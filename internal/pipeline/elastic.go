package pipeline

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"salientpp/internal/ckpt"
	"salientpp/internal/dataset"
	"salientpp/internal/dist"
	"salientpp/internal/metrics"
)

// Elastic training: the training-loop twin of the serving layer's
// timeout-and-regroup machinery. A mid-epoch rank failure surfaces as a
// recoverable collective error (dist.ErrTimeout from an armed
// ClusterConfig.StallTimeout, or dist.ErrClosed from a crashed peer's
// poisoned group) instead of a hang; TrainElastic then probes each rank,
// runs one membership agreement round over the survivors, re-lays the dead
// rank's shard and cache slice onto the K′ survivors from the latest
// barrier-consistent checkpoint every survivor holds, rebuilds the comm
// groups, and continues. Because the continued run consumes exactly the
// state ckpt.ShrinkState produces — the same state a cold K′ restart from
// that checkpoint consumes — and trainEpochFrom seeds its RNG streams by
// absolute epoch and round, the post-regroup trajectory is bitwise
// identical to the cold restart (pinned by the chaos matrix tests).

// ErrShrinkAborted reports a membership change that would leave fewer
// live ranks than ElasticConfig.MinRanks: the run stops instead of
// shrinking, with all resources released.
var ErrShrinkAborted = errors.New("pipeline: too few survivors to continue")

// ElasticConfig tunes the recovery driver around a training run.
type ElasticConfig struct {
	// MinRanks is the smallest cluster the driver will shrink to
	// (default 2: shrinking to one rank leaves no distribution to train).
	// A failure leaving fewer survivors returns ErrShrinkAborted.
	MinRanks int
	// ProbeTimeout bounds each liveness probe and the agreement round
	// (default: the cluster's StallTimeout, else 2s).
	ProbeTimeout time.Duration
	// MaxRecoveries bounds how many membership changes one run will absorb
	// (default K-1, the most a K-rank run can survive).
	MaxRecoveries int
	// Counters, when set, receives the recovery counters
	// (metrics.CounterStallsDetected / CounterRegroups /
	// CounterRoundsReplayed). Nil is a valid no-op sink.
	Counters *metrics.Counters
}

// ElasticReport summarizes what the recovery driver did around a run.
type ElasticReport struct {
	// StallsDetected counts training epochs that failed with a recoverable
	// collective error and triggered a probe.
	StallsDetected int
	// Regroups counts successful membership changes (a full-K regroup
	// after a spurious timeout counts too: the group was rebuilt).
	Regroups int
	// RoundsReplayed sums the consensus checkpoints' mid-epoch round
	// cursors discarded by regroups — the work re-run because an
	// interrupted epoch restarts from its boundary under the new layout.
	RoundsReplayed int
	// FinalK is the member count the run finished with.
	FinalK int
	// Survivors maps final ranks to their original physical ranks.
	Survivors []int
	// RegroupEvents records each membership change, in order.
	RegroupEvents []RegroupEvent
	// Epochs holds the final per-rank statistics for each epoch, keyed by
	// epoch index. An epoch re-run after a regroup overwrites its earlier
	// (pre-failure) entry, so the map matches what a cold K′ restart
	// records.
	Epochs map[int][]EpochStats
}

// RegroupEvent describes one membership change: where the survivors
// agreed to resume, who they are, and the re-laid-out state they resumed
// from. A cold restart consuming State reproduces the post-regroup
// trajectory bitwise (the checkpoint *file* behind Step may later be
// overwritten or rotated by the continued run, so State — not the file —
// is the durable record of what was resumed).
type RegroupEvent struct {
	// Step is the consensus resume point: the newest barrier-consistent
	// checkpoint every survivor held.
	Step ckpt.Step
	// Survivors lists the surviving members as original physical ranks,
	// in new-rank order.
	Survivors []int
	// State is the ckpt.ShrinkState output the continued run consumed.
	State *ckpt.TrainState
}

// TrainElastic runs epochs [FirstEpoch, epochs) with live membership
// changes: any epoch failing with a recoverable collective error triggers
// probe → agreement → shrink → rebuild → continue (see the package comment
// above). Requires checkpointing (cfg.Checkpoint) — the consensus resume
// point is a checkpoint every survivor holds — and a positive
// cfg.StallTimeout (defaulted to 5s) so a wedged peer is detected rather
// than waited on forever. On success the (possibly rebuilt) cluster is
// returned still open, for evaluation; the caller closes it.
func TrainElastic(ds *dataset.Dataset, cfg ClusterConfig, epochs int, ecfg ElasticConfig) (*Cluster, *ElasticReport, error) {
	if !cfg.Checkpoint.Enabled() {
		return nil, nil, fmt.Errorf("pipeline: elastic training requires checkpointing (the survivors' consensus resume point is a checkpoint)")
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 5 * time.Second
	}
	if ecfg.MinRanks <= 0 {
		ecfg.MinRanks = 2
	}
	if ecfg.ProbeTimeout <= 0 {
		ecfg.ProbeTimeout = cfg.StallTimeout
	}
	if ecfg.MaxRecoveries <= 0 {
		ecfg.MaxRecoveries = cfg.K - 1
	}
	userWrap := cfg.WrapComm

	// identity maps current ranks to original physical ranks; the fault
	// harness (WrapComm) follows physical machines across regroups, so a
	// schedule tripped on original rank 2 stays on that machine whatever
	// its current rank is.
	identity := make([]int, cfg.K)
	for i := range identity {
		identity[i] = i
	}
	wrapFor := func(ident []int) func(int, dist.Comm, dist.Comm) (dist.Comm, dist.Comm) {
		if userWrap == nil {
			return nil
		}
		return func(rank int, f, g dist.Comm) (dist.Comm, dist.Comm) {
			return userWrap(ident[rank], f, g)
		}
	}

	cfg.WrapComm = wrapFor(identity)
	cl, err := NewCluster(ds, cfg)
	if err != nil {
		return nil, nil, err
	}
	report := &ElasticReport{Epochs: make(map[int][]EpochStats)}
	var gen uint32
	recoveries := 0
	epoch := cl.FirstEpoch()
	for epoch < epochs {
		stats, err := cl.TrainEpochAll(epoch)
		if err == nil {
			report.Epochs[epoch] = stats
			epoch++
			continue
		}
		if !dist.Recoverable(err) {
			cl.Close()
			return nil, nil, err
		}

		// Stall or crash detected: the group is poisoned. Tear the cluster
		// down (TrainEpochAll already joined every rank goroutine) and find
		// out who is still alive.
		report.StallsDetected++
		ecfg.Counters.Add(metrics.CounterStallsDetected, 1)
		cl.Close()
		if recoveries >= ecfg.MaxRecoveries {
			return nil, nil, fmt.Errorf("pipeline: %w after %d membership changes: %v", errTooManyRecoveries, recoveries, err)
		}
		recoveries++
		gen++

		agreed, survivors, aerr := probeAndAgree(cfg, ecfg, identity, gen)
		if aerr != nil {
			return nil, nil, aerr
		}

		// Load the consensus checkpoint and re-lay it onto the survivors.
		st, lerr := ckpt.Load(filepath.Join(cfg.Checkpoint.Dir, ckpt.FileName(agreed)))
		if lerr != nil {
			return nil, nil, fmt.Errorf("pipeline: loading consensus checkpoint %v: %w", agreed, lerr)
		}
		newStarts, serr := ckpt.ShrinkLayout(st.Topo.Starts, survivors)
		if serr != nil {
			return nil, nil, serr
		}
		rounds, serr := roundsForLayout(ds, st, newStarts, cfg.Train.BatchSize)
		if serr != nil {
			return nil, nil, serr
		}
		shrunk, serr := ckpt.ShrinkState(st, survivors, rounds)
		if serr != nil {
			return nil, nil, serr
		}
		report.RoundsReplayed += st.Step.Round
		ecfg.Counters.Add(metrics.CounterRoundsReplayed, int64(st.Step.Round))

		next := make([]int, len(survivors))
		for i, s := range survivors {
			next[i] = identity[s]
		}
		identity = next
		report.RegroupEvents = append(report.RegroupEvents, RegroupEvent{
			Step: agreed, Survivors: identity, State: shrunk,
		})

		cfg.K = len(survivors)
		cfg.Resume = shrunk
		cfg.WrapComm = wrapFor(identity)
		cl, err = NewCluster(ds, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("pipeline: rebuilding on %d survivors: %w", len(survivors), err)
		}
		report.Regroups++
		ecfg.Counters.Add(metrics.CounterRegroups, 1)
		// The interrupted epoch (and any epoch after the consensus point)
		// re-runs; map overwrite keeps the recorded stats equal to a cold
		// restart's.
		epoch = cl.FirstEpoch()
	}
	report.FinalK = cfg.K
	report.Survivors = identity
	return cl, report, nil
}

var errTooManyRecoveries = errors.New("recovery budget exhausted")

// probeAndAgree finds the live ranks and runs the membership agreement
// round over them, returning the consensus resume step and the survivor
// set (current-rank indices, strictly increasing). Retries the whole
// sequence a bounded number of times, so a rank dying between the probe
// and the agreement is re-probed rather than hanging the consensus.
func probeAndAgree(cfg ClusterConfig, ecfg ElasticConfig, identity []int, gen uint32) (ckpt.Step, []int, error) {
	var lastErr error
	for attempt := 0; attempt <= cfg.K; attempt++ {
		alive := probeRanks(cfg, identity, gen, ecfg.ProbeTimeout)
		var survivors []int
		for r, ok := range alive {
			if ok {
				survivors = append(survivors, r)
			}
		}
		if len(survivors) < ecfg.MinRanks {
			return ckpt.Step{}, nil, fmt.Errorf("%w: %d of %d ranks alive, need %d",
				ErrShrinkAborted, len(survivors), cfg.K, ecfg.MinRanks)
		}
		agreed, err := agreeMembers(cfg, identity, survivors, gen, ecfg.ProbeTimeout)
		if err == nil {
			return agreed, survivors, nil
		}
		if !dist.Recoverable(err) {
			return ckpt.Step{}, nil, err
		}
		lastErr = err // a survivor died mid-agreement: probe again
	}
	return ckpt.Step{}, nil, fmt.Errorf("pipeline: membership agreement never converged: %w", lastErr)
}

// probeRanks health-checks every current rank in parallel: each probe
// builds singleton feature and gradient groups, applies the rank's fault
// wrapper (so a wedged or dead machine's probe inherits its faults), and
// runs one bounded collective on each. A rank is alive only if both
// collectives succeed — the training loop needs both its communicators.
func probeRanks(cfg ClusterConfig, identity []int, gen uint32, timeout time.Duration) []bool {
	alive := make([]bool, cfg.K)
	var wg sync.WaitGroup
	for r := 0; r < cfg.K; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			f, g, err := singletonPair(cfg.UseTCP)
			if err != nil {
				return
			}
			if cfg.WrapComm != nil {
				f, g = cfg.WrapComm(r, f, g)
			}
			defer f.Close()
			defer g.Close()
			f.SetTimeout(timeout)
			g.SetTimeout(timeout)
			echo, err := f.AllToAll([][]byte{dist.AppendHealthFrame(nil, gen)})
			if err != nil {
				return
			}
			if got, err := dist.DecodeHealthFrame(echo[0]); err != nil || got != gen {
				return
			}
			if err := g.AllReduceSum([]float32{1}); err != nil {
				return
			}
			alive[r] = true
		}(r)
	}
	wg.Wait()
	return alive
}

func singletonPair(useTCP bool) (dist.Comm, dist.Comm, error) {
	build := dist.NewLocalGroup
	if useTCP {
		build = dist.NewTCPGroup
	}
	fs, err := build(1)
	if err != nil {
		return nil, nil, err
	}
	gs, err := build(1)
	if err != nil {
		fs[0].Close()
		return nil, nil, err
	}
	return fs[0], gs[0], nil
}

// agreeMembers runs one membership agreement round: every survivor builds
// into a fresh K′-wide group, broadcasts a MemberFrame carrying its
// physical identity and the checkpoint steps it holds, and computes — from
// the same K′ frames — the newest step present in every survivor's list.
// All members must converge on the same step or the round fails.
func agreeMembers(cfg ClusterConfig, identity []int, survivors []int, gen uint32, timeout time.Duration) (ckpt.Step, error) {
	k := len(survivors)
	build := dist.NewLocalGroup
	if cfg.UseTCP {
		build = dist.NewTCPGroup
	}
	feats, err := build(k)
	if err != nil {
		return ckpt.Step{}, err
	}
	grads, err := build(k)
	if err != nil {
		for _, c := range feats {
			c.Close()
		}
		return ckpt.Step{}, err
	}

	type verdict struct {
		step ckpt.Step
		err  error
	}
	out := make(chan verdict, k)
	for i := 0; i < k; i++ {
		go func(i int) {
			f, g := feats[i], grads[i]
			if cfg.WrapComm != nil {
				f, g = cfg.WrapComm(survivors[i], f, g)
			}
			defer f.Close()
			defer g.Close()
			f.SetTimeout(timeout)
			g.SetTimeout(timeout)
			step, err := agreeOne(f, cfg.Checkpoint.Dir, gen, int32(identity[survivors[i]]), survivors, identity)
			out <- verdict{step, err}
		}(i)
	}
	var steps []ckpt.Step
	var firstErr error
	for i := 0; i < k; i++ {
		v := <-out
		if v.err != nil {
			if firstErr == nil {
				firstErr = v.err
			}
			continue
		}
		steps = append(steps, v.step)
	}
	if firstErr != nil {
		return ckpt.Step{}, firstErr
	}
	for _, s := range steps[1:] {
		if s != steps[0] {
			return ckpt.Step{}, fmt.Errorf("pipeline: membership round diverged: %v vs %v", s, steps[0])
		}
	}
	return steps[0], nil
}

// agreeOne is one member's half of the agreement round: advertise the
// locally held checkpoint steps, collect every peer's list, and return the
// newest step present in all of them.
func agreeOne(c dist.Comm, dir string, gen uint32, selfRank int32, survivors, identity []int) (ckpt.Step, error) {
	held, err := ckpt.Steps(dir)
	if err != nil {
		return ckpt.Step{}, fmt.Errorf("pipeline: listing checkpoints: %w", err)
	}
	if len(held) > dist.MaxMemberSteps {
		held = held[:dist.MaxMemberSteps]
	}
	frame := dist.MemberFrame{Gen: gen, Rank: selfRank}
	for _, s := range held {
		frame.Steps = append(frame.Steps, dist.MemberStep{Epoch: int32(s.Epoch), Round: int32(s.Round)})
	}
	payload, err := dist.AppendMemberFrame(nil, frame)
	if err != nil {
		return ckpt.Step{}, err
	}
	send := make([][]byte, c.Size())
	for i := range send {
		send[i] = payload
	}
	recv, err := c.AllToAll(send)
	if err != nil {
		return ckpt.Step{}, err
	}

	// Count how many members hold each advertised step; the resume point
	// is the newest step held by all of them.
	holders := make(map[ckpt.Step]int)
	for peer, b := range recv {
		pf, err := dist.DecodeMemberFrame(b)
		if err != nil {
			return ckpt.Step{}, fmt.Errorf("pipeline: membership frame from peer %d: %w", peer, err)
		}
		if pf.Gen != gen {
			return ckpt.Step{}, fmt.Errorf("pipeline: membership frame from peer %d answers generation %d, round is %d", peer, pf.Gen, gen)
		}
		if want := int32(identity[survivors[peer]]); pf.Rank != want {
			return ckpt.Step{}, fmt.Errorf("pipeline: membership frame from peer %d claims rank %d, want %d", peer, pf.Rank, want)
		}
		for _, s := range pf.Steps {
			holders[ckpt.Step{Epoch: int(s.Epoch), Round: int(s.Round)}]++
		}
	}
	var best ckpt.Step
	found := false
	for s, n := range holders {
		if n != c.Size() {
			continue
		}
		if !found || best.Less(s) {
			best, found = s, true
		}
	}
	if !found {
		return ckpt.Step{}, fmt.Errorf("pipeline: no checkpoint is held by all %d survivors", c.Size())
	}
	return best, nil
}

// roundsForLayout derives the rounds-per-epoch for a merged layout: every
// training vertex is assigned to its new owner and the global round count
// is the largest per-owner batch count — the same derivation NewCluster
// performs, run ahead of it so the shrunk state validates.
func roundsForLayout(ds *dataset.Dataset, st *ckpt.TrainState, newStarts []int64, batchSize int) (int, error) {
	if batchSize <= 0 {
		return 0, fmt.Errorf("pipeline: batch size %d", batchSize)
	}
	counts := make([]int, len(newStarts)-1)
	for _, v := range ds.TrainIDs() {
		rv := int64(st.Topo.Perm[v])
		owner := sort.Search(len(newStarts)-1, func(i int) bool { return newStarts[i+1] > rv })
		if owner >= len(counts) {
			return 0, fmt.Errorf("pipeline: train vertex %d outside the merged layout", v)
		}
		counts[owner]++
	}
	rounds := 0
	for _, n := range counts {
		if nb := (n + batchSize - 1) / batchSize; nb > rounds {
			rounds = nb
		}
	}
	if rounds == 0 {
		return 0, fmt.Errorf("pipeline: merged layout holds no training vertices")
	}
	return rounds, nil
}
