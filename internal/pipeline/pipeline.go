// Package pipeline implements SALIENT++'s distributed minibatch training
// loop with the deep minibatch-preparation pipeline of §4.3 / Appendix D:
// neighborhood sampling, the three-collective feature gather (request
// counts, request ids, feature payloads), host↔device bookkeeping, model
// computation, and gradient synchronization — with up to PipelineDepth
// minibatches in flight so communication overlaps computation.
//
// Each "machine" is one goroutine group driving its own communicators.
// Collectives are matched across ranks by construction: every rank
// processes the same number of rounds per epoch (padding with empty
// batches when training-vertex counts are ragged) and issues feature
// gathers on one communicator and gradient all-reduces on another, the
// same separation NCCL streams give the original system.
package pipeline

import (
	"fmt"
	"sync"
	"time"

	"salientpp/internal/cache"
	"salientpp/internal/ckpt"
	"salientpp/internal/dist"
	"salientpp/internal/nn"
	"salientpp/internal/rng"
	"salientpp/internal/sample"
	"salientpp/internal/tensor"
)

// Config controls one rank's training loop.
type Config struct {
	// Fanouts are the sampling fanouts (training).
	Fanouts []int
	// BatchSize is the per-machine minibatch size.
	BatchSize int
	// PipelineDepth bounds in-flight minibatches; SALIENT++ uses 10.
	// Depth 1 degenerates to fully sequential batch preparation.
	PipelineDepth int
	// SamplerWorkers is the shared-memory sampling parallelism per machine.
	SamplerWorkers int
	// Parallelism bounds setup-time analysis parallelism — the sharded VIP
	// propagation and cache-policy construction. 0 uses GOMAXPROCS; results
	// are identical for every setting.
	Parallelism int
	// LR is the Adam learning rate.
	LR float64
	// Seed drives sampling and dropout; combined with rank and epoch.
	Seed uint64
	// GradCodec selects the wire encoding of the per-round gradient
	// all-reduce: "fp32" (raw, the default — bitwise the historical
	// reduce), "fp16", or "int8" with error-feedback residual
	// accumulation (dist.GradReducer). Independent of the feature-gather
	// codec; all ranks must agree. The empty string means fp32, so
	// zero-valued configs keep the historical behavior.
	GradCodec string
	// NoGradOverlap disables the overlapped per-layer gradient reduce and
	// falls back to synchronously reducing each layer after the full
	// backward pass, in the same layer order — identical arithmetic,
	// strictly more idle time. The zero value (overlap on) is the
	// production configuration; the flag exists so the epoch benchmark
	// can measure the overlap win.
	NoGradOverlap bool
}

func (c Config) withDefaults() Config {
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 10
	}
	if c.SamplerWorkers <= 0 {
		c.SamplerWorkers = 1
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	return c
}

// Rank is one machine's training state.
type Rank struct {
	cfg      Config
	commFeat dist.Comm
	commGrad dist.Comm
	store    *dist.Store
	sampler  *sample.Sampler
	model    *nn.Model
	opt      *nn.Adam
	trainIDs []int32
	labels   []int32 // global labels (label < 0 means unlabeled)
	rounds   int     // collective rounds per epoch (global max batches)

	// Gradient synchronization: the codec-aware reducer plus per-layer
	// views of the model's gradient tensors and error-feedback residuals,
	// grouped so layer L can all-reduce while layer L-1 is still in
	// backward.
	reducer   *dist.GradReducer
	layerMats [][]*tensor.Matrix
	layerRes  [][][]float32

	// Per-batch scratch reused across the epoch so the steady-state loop
	// allocates nothing: pooled loss-gradient matrices and the label
	// staging buffer.
	pool     *tensor.Pool
	labelBuf []int32

	// saver, when set, receives barrier-consistent checkpoint offers at
	// round boundaries. Rounds that do not checkpoint cost one integer
	// check (guarded by TestCheckpointIdleAddsNoAllocations).
	saver *ckpt.Saver

	// installer, when set, drives the online cache layer: the feature
	// collection stage feeds it every round's hit/miss ids (in round
	// order, from that single goroutine), and the epoch boundary installs
	// the policy's next cache epoch into the store — before the boundary
	// checkpoint offer, so a restored run resumes with exactly the
	// membership the uninterrupted run trained the next epoch under. Nil
	// (the default) pins the setup cache forever, bitwise the historical
	// behavior.
	installer *cache.Installer
}

// EpochStats aggregates one training epoch on one rank.
type EpochStats struct {
	Loss        float64 // mean training loss over real batches
	Accuracy    float64 // mean training accuracy over real batches
	Batches     int     // real (non-padding) batches
	Gather      dist.GatherStats
	BytesSent   int64 // feature-communication bytes this epoch
	Duration    time.Duration
	SampleTime  time.Duration // cumulative sampling stage time
	GatherTime  time.Duration // cumulative feature-collection stage time
	ComputeTime time.Duration // cumulative model fwd/bwd/optimizer time

	// Compute attribution, as reported by the model's stage timers:
	// neighbor aggregation, dense transforms (GEMMs/bias/activations), and
	// the backward pass. Their sum is slightly below ComputeTime (loss and
	// the optimizer step are counted only in the total).
	AggregateTime time.Duration
	TransformTime time.Duration
	BackwardTime  time.Duration

	// Gradient-synchronization attribution. GradReduceTime is the total
	// wall time spent inside gradient all-reduces; GradWaitTime is the
	// part the training loop actually blocked on (the rest ran hidden
	// under backward compute). Their difference is the overlap win the
	// epoch benchmark reports as overlap_seconds_saved; with
	// Config.NoGradOverlap the two are equal by construction.
	GradBytesSent  int64 // gradient all-reduce bytes this epoch
	GradReduceTime time.Duration
	GradWaitTime   time.Duration

	// Online cache layer accounting: epochs installed at this epoch's
	// boundary (0 or 1 per epoch in training) and the cache rows newly
	// admitted by them. Zero under the default static policy.
	CacheInstalls int64
	CacheChurn    int64
}

// NewRank wires one machine. labels must cover all global vertices
// (unlabeled entries < 0); trainIDs are the machine's local training
// vertices (global ids); globalMaxBatches is max over ranks of
// ceil(|T_k|/B) so that collective counts match.
func NewRank(cfg Config, commFeat, commGrad dist.Comm, store *dist.Store, s *sample.Sampler, m *nn.Model, trainIDs, labels []int32, globalMaxBatches int) (*Rank, error) {
	cfg = cfg.withDefaults()
	if commFeat.Rank() != commGrad.Rank() || commFeat.Size() != commGrad.Size() {
		return nil, fmt.Errorf("pipeline: feature and gradient communicators disagree")
	}
	if globalMaxBatches <= 0 {
		return nil, fmt.Errorf("pipeline: non-positive round count %d", globalMaxBatches)
	}
	gradCodec, err := dist.ParseCodec(cfg.GradCodec)
	if err != nil {
		return nil, fmt.Errorf("pipeline: gradient codec: %w", err)
	}
	// Group gradients and error-feedback residuals by layer: the unit of
	// the overlapped all-reduce. Lossy codecs need the residual buffers;
	// fp32 never allocates them.
	layerMats := make([][]*tensor.Matrix, len(m.Layers))
	layerRes := make([][][]float32, len(m.Layers))
	for li := range m.Layers {
		for _, p := range m.LayerParams(li) {
			if gradCodec != dist.CodecFP32 {
				p.EnsureResidual()
			}
			layerMats[li] = append(layerMats[li], p.G)
			layerRes[li] = append(layerRes[li], p.EF)
		}
	}
	return &Rank{
		cfg:       cfg,
		commFeat:  commFeat,
		commGrad:  commGrad,
		store:     store,
		sampler:   s,
		model:     m,
		opt:       nn.NewAdam(cfg.LR),
		trainIDs:  trainIDs,
		labels:    labels,
		rounds:    globalMaxBatches,
		reducer:   dist.NewGradReducer(commGrad, gradCodec),
		layerMats: layerMats,
		layerRes:  layerRes,
		pool:      tensor.NewPool(),
	}, nil
}

// Model exposes the rank's model (e.g. for evaluation or weight checks).
func (r *Rank) Model() *nn.Model { return r.model }

// Store exposes the rank's partitioned feature store. Serving attaches
// here: Store().Sibling gives an independently-communicating store over
// the same read-only shard and cache.
func (r *Rank) Store() *dist.Store { return r.store }

// Sampler exposes the rank's training sampler (immutable; safe to share).
func (r *Rank) Sampler() *sample.Sampler { return r.sampler }

// SetCheckpointer attaches the run's coordinated checkpoint saver. All
// ranks of a run must share one saver (it is the barrier that makes saves
// consistent). Install before training starts.
func (r *Rank) SetCheckpointer(s *ckpt.Saver) { r.saver = s }

// SetCacheInstaller attaches the rank's online cache installer (one per
// rank; it owns the policy and epoch builder for this rank's store).
// Install before training starts.
func (r *Rank) SetCacheInstaller(in *cache.Installer) { r.installer = in }

// RestoreState loads a checkpointed rank state: parameter values, Adam
// moments, the Adam step counter, and the dropout RNG stream. Shapes must
// match the rank's model.
func (r *Rank) RestoreState(st *ckpt.RankState) error {
	ps := r.model.Params()
	if len(st.Params) != len(ps) {
		return fmt.Errorf("pipeline: checkpoint has %d params, model has %d", len(st.Params), len(ps))
	}
	for i, p := range ps {
		sp := &st.Params[i]
		if int(sp.Rows) != p.W.Rows || int(sp.Cols) != p.W.Cols {
			return fmt.Errorf("pipeline: checkpoint param %d is %dx%d, model wants %dx%d",
				i, sp.Rows, sp.Cols, p.W.Rows, p.W.Cols)
		}
		copy(p.W.Data, sp.W)
		copy(p.M.Data, sp.M)
		copy(p.V.Data, sp.V)
		// Error-feedback residuals (format v4; empty in older files and
		// fp32 runs). Copy in place — the reducer holds aliases of p.EF.
		if len(sp.EF) > 0 {
			if len(sp.EF) != len(p.W.Data) {
				return fmt.Errorf("pipeline: checkpoint param %d residual has %d values, want %d", i, len(sp.EF), len(p.W.Data))
			}
			p.EnsureResidual()
			copy(p.EF, sp.EF)
		} else if p.EF != nil {
			for j := range p.EF {
				p.EF[j] = 0
			}
		}
		p.ZeroGrad()
	}
	r.opt.SetStepCount(int(st.AdamStep))
	r.model.SetRNGState(st.ModelRNG)
	return nil
}

// offerCheckpoint contributes this rank's state to a barrier-consistent
// checkpoint at step. The fill callback appends into the saver's reusable
// per-rank slot, so steady-state checkpointing reallocates nothing once
// the slot has reached its high-water size.
func (r *Rank) offerCheckpoint(step ckpt.Step, partial ckpt.PartialEpoch) error {
	return r.saver.Offer(r.commFeat.Rank(), step, func(st *ckpt.RankState) {
		ps := r.model.Params()
		if len(st.Params) != len(ps) {
			st.Params = make([]ckpt.ParamState, len(ps))
		}
		for i, p := range ps {
			sp := &st.Params[i]
			sp.Rows, sp.Cols = int32(p.W.Rows), int32(p.W.Cols)
			sp.W = append(sp.W[:0], p.W.Data...)
			sp.M = append(sp.M[:0], p.M.Data...)
			sp.V = append(sp.V[:0], p.V.Data...)
			sp.EF = append(sp.EF[:0], p.EF...)
		}
		st.AdamStep = int64(r.opt.StepCount())
		st.ModelRNG = r.model.RNGState()
		st.Partial = partial
	})
}

// failCheckpoint turns a checkpoint-save failure into a loud, group-wide
// abort. The saver's Offer only surfaces the write error on the
// last-arriving rank; its peers already got nil and will block in the next
// gradient all-reduce waiting for this rank. Closing both communicator
// groups — exactly what a dying rank does — makes every peer's blocked or
// future collective error out, so the whole run fails with an error
// instead of hanging on (say) a full disk.
func (r *Rank) failCheckpoint(err error) error {
	r.commFeat.Close()
	r.commGrad.Close()
	return fmt.Errorf("pipeline: checkpoint save failed, aborting the run: %w", err)
}

// partialFrom snapshots the accumulated epoch statistics at a round
// boundary into checkpoint form.
func partialFrom(stats *EpochStats, doneReal int, liveBytes, liveGradBytes int64) ckpt.PartialEpoch {
	return ckpt.PartialEpoch{
		Loss:     stats.Loss,
		Accuracy: stats.Accuracy,
		Batches:  int64(doneReal),
		LocalGPU: int64(stats.Gather.LocalGPU),
		LocalCPU: int64(stats.Gather.LocalCPU),
		CacheHit: int64(stats.Gather.CacheHits),
		Remote:   int64(stats.Gather.RemoteFetch),

		BytesSent: liveBytes,
		SampleNS:  stats.SampleTime.Nanoseconds(),
		GatherNS:  stats.GatherTime.Nanoseconds(),
		ComputeNS: stats.ComputeTime.Nanoseconds(),

		AggregateNS: stats.AggregateTime.Nanoseconds(),
		TransformNS: stats.TransformTime.Nanoseconds(),
		BackwardNS:  stats.BackwardTime.Nanoseconds(),

		GradBytesSent: liveGradBytes,
		GradReduceNS:  stats.GradReduceTime.Nanoseconds(),
		GradWaitNS:    stats.GradWaitTime.Nanoseconds(),
	}
}

// preparedBatch flows between pipeline stages.
type preparedBatch struct {
	mfg   *sample.MFG
	feats *tensor.Matrix
	stats dist.GatherStats
	gtime time.Duration
	stime time.Duration
	empty bool
}

// TrainEpoch runs one synchronized training epoch. All ranks must call it
// with the same epoch number.
func (r *Rank) TrainEpoch(epoch int) (EpochStats, error) {
	return r.trainEpochFrom(epoch, 0, nil)
}

// trainEpochFrom runs epoch from the given round cursor: the first
// startRound rounds are skipped (they were retired before the checkpoint
// this resume came from) and partial, when non-nil, seeds the epoch
// statistics with the bitwise state accumulated before the restart. Batch
// permutation and per-batch sampling streams are derived from absolute
// round indices, so a resumed epoch processes exactly the batches — with
// exactly the random numbers — the uninterrupted run would have.
func (r *Rank) trainEpochFrom(epoch, startRound int, partial *ckpt.PartialEpoch) (EpochStats, error) {
	start := time.Now()
	base := rng.New(r.cfg.Seed ^ (uint64(epoch+1) * 0x9e3779b97f4a7c15)).Split(uint64(r.commFeat.Rank()))
	batches := sample.EpochBatches(r.trainIDs, r.cfg.BatchSize, base.Split(0))
	// Pad to the global round count with empty batches.
	real := len(batches)
	for len(batches) < r.rounds {
		batches = append(batches, nil)
	}
	if len(batches) > r.rounds {
		return EpochStats{}, fmt.Errorf("pipeline: rank %d has %d batches for %d rounds", r.commFeat.Rank(), len(batches), r.rounds)
	}
	if startRound < 0 || startRound >= r.rounds {
		return EpochStats{}, fmt.Errorf("pipeline: resume round %d outside [0,%d)", startRound, r.rounds)
	}
	batches = batches[startRound:]

	bytesBefore := r.commFeat.BytesSent()
	gradBytesBefore := r.commGrad.BytesSent()
	var stats EpochStats
	stats.Batches = real
	// doneReal counts real batches retired so far (across the restart);
	// resumedBytes carries the byte counter over it. Times and bytes are
	// reporting-only: the resumed run re-pays the communication of rounds
	// between the checkpoint and the crash, so BytesSent is approximate
	// after a restore, while the loss/accuracy/access counts are exact.
	doneReal := 0
	var resumedBytes, resumedGradBytes int64
	if partial != nil {
		stats.Loss = partial.Loss
		stats.Accuracy = partial.Accuracy
		stats.Gather.LocalGPU = int(partial.LocalGPU)
		stats.Gather.LocalCPU = int(partial.LocalCPU)
		stats.Gather.CacheHits = int(partial.CacheHit)
		stats.Gather.RemoteFetch = int(partial.Remote)
		stats.SampleTime = time.Duration(partial.SampleNS)
		stats.GatherTime = time.Duration(partial.GatherNS)
		stats.ComputeTime = time.Duration(partial.ComputeNS)
		stats.AggregateTime = time.Duration(partial.AggregateNS)
		stats.TransformTime = time.Duration(partial.TransformNS)
		stats.BackwardTime = time.Duration(partial.BackwardNS)
		stats.GradReduceTime = time.Duration(partial.GradReduceNS)
		stats.GradWaitTime = time.Duration(partial.GradWaitNS)
		doneReal = int(partial.Batches)
		resumedBytes = partial.BytesSent
		resumedGradBytes = partial.GradBytesSent
	}
	// Discard stage time accrued outside training (e.g. an evaluation pass
	// between epochs) so the per-round harvest below attributes only this
	// epoch's compute.
	r.model.TakeStageTimers()

	// abort wakes every pipeline stage when the epoch exits early (gather
	// or compute failure): sampling workers blocked on a pipeline slot, the
	// slot forwarder, and the feature-collection stage all select on it, so
	// no goroutine (or pipeline slot) leaks on the error path.
	abort := make(chan struct{})
	var abortOnce sync.Once
	closeAbort := func() { abortOnce.Do(func() { close(abort) }) }
	defer closeAbort()

	// Stage A: parallel sampling, streamed in batch order. The semaphore
	// enforces the paper's bound of PipelineDepth in-flight minibatches:
	// workers acquire before sampling, the training loop releases after
	// the batch finishes its model update.
	inflight := make(chan struct{}, r.cfg.PipelineDepth)
	sampled := r.streamSampled(batches, base.Split(1), startRound, inflight, abort)

	// Stage B: feature collection (three matched collectives per round).
	ready := make(chan preparedBatch, r.cfg.PipelineDepth)
	errCh := make(chan error, 1)
	go func() {
		defer close(ready)
		for sb := range sampled {
			t0 := time.Now()
			feats, gstats, err := r.store.Gather(sb.mfg.InputIDs())
			if err != nil {
				sb.mfg.Release()
				errCh <- err
				closeAbort()
				return
			}
			// Feed the online cache scorer while the round's hit/miss id
			// lists are still valid — this goroutine sees rounds in order,
			// matching the policy's single-caller contract.
			if r.installer != nil {
				r.installer.Observe(cache.RoundAccess{Hits: gstats.CacheHitIDs, Misses: gstats.RemoteIDs})
			}
			// RemoteByPeer and the hit/miss id lists alias store scratch the
			// next Gather reuses; only the scalar counts cross into the
			// compute stage.
			gstats.RemoteByPeer = nil
			gstats.CacheHitIDs = nil
			gstats.RemoteIDs = nil
			pb := preparedBatch{mfg: sb.mfg, feats: feats, stats: gstats, gtime: time.Since(t0), stime: sb.stime, empty: sb.empty}
			select {
			case ready <- pb:
			case <-abort:
				// The undeliverable batch's pooled buffers go back now; the
				// abort drain below can only see batches that reached ready.
				r.store.Release(feats)
				sb.mfg.Release()
				return
			}
		}
	}()

	// failBatch unwinds the epoch on a stage-C error: wake every stage via
	// abort, then hand the failing batch's pooled buffers — and those of
	// every batch still queued in ready — back to their pools, so an
	// aborted epoch leaks neither goroutines nor pooled tensors.
	failBatch := func(pb preparedBatch, err error) (EpochStats, error) {
		closeAbort()
		r.store.Release(pb.feats)
		if pb.mfg != nil {
			pb.mfg.Release()
		}
		for more := range ready {
			r.store.Release(more.feats)
			more.mfg.Release()
		}
		r.model.ReleaseBatch()
		return stats, err
	}

	// Stage D: overlapped gradient synchronization. A dedicated reducer
	// goroutine consumes per-layer jobs that the model's backward hook
	// emits the moment a layer's gradients are final, so layer L's
	// all-reduce runs concurrently with layer L-1's backward kernels. One
	// result per round reports the error and the wall time spent inside
	// reduces; the training loop measures separately how long it actually
	// blocked, and the difference is the overlap win. Job capacity is one
	// round's layer count and the loop always harvests a round's result
	// before the next Backward, so the hook never blocks. The cleanup
	// below drains deterministically: Reduce always returns once every
	// rank has matched the collective or the group is closed.
	numLayers := len(r.model.Layers)
	type roundReduce struct {
		err  error
		work time.Duration
	}
	var reduced chan roundReduce
	if !r.cfg.NoGradOverlap {
		jobs := make(chan int, numLayers)
		reduced = make(chan roundReduce, 1)
		go func() {
			var rr roundReduce
			count := 0
			for li := range jobs {
				if rr.err == nil {
					t0 := time.Now()
					rr.err = r.reducer.Reduce(r.layerMats[li], r.layerRes[li])
					rr.work += time.Since(t0)
				}
				count++
				if count == numLayers {
					reduced <- rr
					rr, count = roundReduce{}, 0
				}
			}
			close(reduced)
		}()
		r.model.SetBackwardLayerHook(func(li int) { jobs <- li })
		defer func() {
			r.model.SetBackwardLayerHook(nil)
			close(jobs)
			for range reduced {
				// Drain any round completed between the last harvest and the
				// close so the reducer goroutine never leaks.
			}
		}()
	}

	// Stage C: model computation and gradient synchronization.
	grads := r.model.Params()
	roundsDone := startRound
	for pb := range ready {
		t0 := time.Now()
		logits, err := r.model.Forward(pb.mfg, pb.feats, true)
		if err != nil {
			return failBatch(pb, err)
		}
		if cap(r.labelBuf) < len(pb.mfg.Seeds) {
			r.labelBuf = make([]int32, len(pb.mfg.Seeds))
		}
		labels := r.labelBuf[:len(pb.mfg.Seeds)]
		for i, v := range pb.mfg.Seeds {
			labels[i] = r.labels[v]
		}
		dL := r.pool.Get(logits.Rows, logits.Cols)
		loss := tensor.SoftmaxCrossEntropy(logits, labels, dL)
		if !pb.empty {
			stats.Loss += loss
			stats.Accuracy += tensor.Accuracy(logits, labels)
			stats.Gather.LocalGPU += pb.stats.LocalGPU
			stats.Gather.LocalCPU += pb.stats.LocalCPU
			stats.Gather.CacheHits += pb.stats.CacheHits
			stats.Gather.RemoteFetch += pb.stats.RemoteFetch
			stats.GatherTime += pb.gtime
			stats.SampleTime += pb.stime
			doneReal++
		}
		r.model.ZeroGrad()
		r.model.Backward(dL)
		r.pool.Put(dL)

		// Harvest the round's gradient all-reduce (sum across ranks) from
		// the overlapped reducer — or run it synchronously per layer in
		// the same descending order when overlap is disabled (identical
		// arithmetic, so the two modes train bitwise identically).
		if reduced != nil {
			t0 := time.Now()
			rr := <-reduced
			stats.GradWaitTime += time.Since(t0)
			stats.GradReduceTime += rr.work
			if rr.err != nil {
				return failBatch(pb, rr.err)
			}
		} else {
			for li := numLayers - 1; li >= 0; li-- {
				t0 := time.Now()
				if err := r.reducer.Reduce(r.layerMats[li], r.layerRes[li]); err != nil {
					return failBatch(pb, err)
				}
				d := time.Since(t0)
				stats.GradReduceTime += d
				stats.GradWaitTime += d
			}
		}
		inv := float32(1) / float32(r.commGrad.Size())
		for _, p := range grads {
			for i := range p.G.Data {
				p.G.Data[i] *= inv
			}
		}
		r.opt.Step(grads)
		stats.ComputeTime += time.Since(t0)
		st := r.model.TakeStageTimers()
		stats.AggregateTime += time.Duration(st.AggregateNS)
		stats.TransformTime += time.Duration(st.TransformNS)
		stats.BackwardTime += time.Duration(st.BackwardNS)
		r.store.Release(pb.feats) // recycle the batch's feature matrix
		pb.mfg.Release()          // recycle the batch's sampling buffers
		<-inflight                // retire the batch: frees one pipeline slot
		roundsDone++

		// Barrier-consistent mid-epoch checkpoint: every rank evaluates the
		// same trigger on the same shared round cursor, so all K offers
		// carry the same Step. The boundary case roundsDone == r.rounds is
		// normalized to the epoch-boundary checkpoint below.
		if r.saver != nil && roundsDone < r.rounds && r.saver.DueRound(roundsDone) {
			live := resumedBytes + r.commFeat.BytesSent() - bytesBefore
			liveGrad := resumedGradBytes + r.commGrad.BytesSent() - gradBytesBefore
			step := ckpt.Step{Epoch: epoch, Round: roundsDone}
			if err := r.offerCheckpoint(step, partialFrom(&stats, doneReal, live, liveGrad)); err != nil {
				return failBatch(preparedBatch{}, r.failCheckpoint(err))
			}
		}
	}
	select {
	case err := <-errCh:
		return stats, err
	default:
	}
	// The last batch's intermediates would otherwise stay pinned in the
	// model arena until the next epoch's first Forward.
	r.model.ReleaseBatch()
	// Online cache install at the epoch boundary: the feature-collection
	// goroutine has exited (ready closed and drained), so no gather on this
	// store is in flight — the displaced epoch can be released immediately.
	// This precedes the boundary checkpoint offer so a restored run resumes
	// with the membership the uninterrupted run trains the next epoch under.
	if r.installer != nil {
		next, churn, err := r.installer.Next(r.store.Epoch())
		if err != nil {
			return stats, err
		}
		if next != nil {
			prev, err := r.store.InstallEpoch(next)
			if err != nil {
				r.installer.Release(next)
				return stats, err
			}
			r.installer.Release(prev)
			stats.CacheInstalls++
			stats.CacheChurn += int64(churn)
		}
	}
	// Epoch-boundary checkpoint (also where a round trigger landing exactly
	// on the last round is normalized to): saved as (epoch+1, round 0), so
	// a restore starts the next epoch afresh with no partial statistics.
	if r.saver != nil && (r.saver.DueEpoch(epoch+1) || r.saver.DueRound(r.rounds)) {
		if err := r.offerCheckpoint(ckpt.Step{Epoch: epoch + 1, Round: 0}, ckpt.PartialEpoch{}); err != nil {
			return stats, r.failCheckpoint(err)
		}
	}
	if real > 0 {
		stats.Loss /= float64(real)
		stats.Accuracy /= float64(real)
	}
	stats.BytesSent = resumedBytes + r.commFeat.BytesSent() - bytesBefore
	stats.GradBytesSent = resumedGradBytes + r.commGrad.BytesSent() - gradBytesBefore
	stats.Duration = time.Since(start)
	return stats, nil
}

// streamSampled runs the sampling stage: SamplerWorkers goroutines sample
// batches which are forwarded in order. Workers acquire a slot from
// inflight before sampling; the training loop releases slots as batches
// retire, bounding in-flight minibatches by PipelineDepth. Closing abort
// unwinds every goroutine here even when no slot will ever be released
// again (the error path). offset is the absolute round index of
// batches[0]: batch i always samples with the stream base.Split(offset+i),
// so a resumed epoch draws exactly the numbers the uninterrupted one did.
func (r *Rank) streamSampled(batches [][]int32, base *rng.RNG, offset int, inflight chan struct{}, abort <-chan struct{}) <-chan sampledBatch {
	slots := make([]chan sampledBatch, len(batches))
	for i := range slots {
		slots[i] = make(chan sampledBatch, 1)
	}
	var next int
	var mu sync.Mutex
	workers := r.cfg.SamplerWorkers
	if workers > len(batches) {
		workers = len(batches)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		go func() {
			worker := r.sampler.AcquireWorker(rng.New(0))
			defer r.sampler.ReleaseWorker(worker)
			for {
				select {
				case inflight <- struct{}{}: // claim a pipeline slot
				case <-abort:
					return
				}
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(batches) {
					<-inflight // nothing left; return the slot
					return
				}
				worker.SetRNG(base.Split(uint64(offset + i)))
				t0 := time.Now()
				m := worker.Sample(batches[i])
				// Capacity-1 channel with this goroutine as sole producer:
				// the send never blocks.
				slots[i] <- sampledBatch{mfg: m, empty: len(batches[i]) == 0, stime: time.Since(t0)}
			}
		}()
	}
	out := make(chan sampledBatch, r.cfg.PipelineDepth)
	go func() {
		defer close(out)
		for i := range slots {
			var sb sampledBatch
			select {
			case sb = <-slots[i]:
			case <-abort:
				return
			}
			select {
			case out <- sb:
			case <-abort:
				sb.mfg.Release()
				return
			}
		}
	}()
	return out
}

type sampledBatch struct {
	mfg   *sample.MFG
	empty bool
	stime time.Duration
}

// Evaluate runs sampled inference over ids (this rank's local evaluation
// vertices) and returns (correct, total). Fanouts may differ from training
// (the paper evaluates with (20,20,20)). All ranks must call Evaluate
// together with the same rounds; rounds must be >= ceil(len(ids)/batch)
// for every rank (use the global max).
func (r *Rank) Evaluate(ids []int32, fanouts []int, batch, rounds, epoch int) (int, int, error) {
	s, err := sample.NewSampler(r.sampler.Graph(), fanouts)
	if err != nil {
		return 0, 0, err
	}
	base := rng.New(r.cfg.Seed ^ 0xe7a1 ^ uint64(epoch)<<20).Split(uint64(r.commFeat.Rank()))
	w := s.NewWorker(base.Split(7))
	correct, total := 0, 0
	for round := 0; round < rounds; round++ {
		lo := round * batch
		var seeds []int32
		if lo < len(ids) {
			hi := lo + batch
			if hi > len(ids) {
				hi = len(ids)
			}
			seeds = ids[lo:hi]
		}
		mfg := w.Sample(seeds)
		feats, _, err := r.store.Gather(mfg.InputIDs())
		if err != nil {
			return correct, total, err
		}
		logits, err := r.model.Forward(mfg, feats, false)
		// Inference never runs Backward, so the input features are dead as
		// soon as Forward returns (logits live in the model's own arena).
		r.store.Release(feats)
		if err != nil {
			return correct, total, err
		}
		for i, v := range mfg.Seeds {
			if r.labels[v] < 0 {
				continue
			}
			total++
			if int32(tensor.ArgmaxRow(logits.Row(i))) == r.labels[v] {
				correct++
			}
		}
		mfg.Release()
	}
	r.model.ReleaseBatch()
	return correct, total, nil
}
