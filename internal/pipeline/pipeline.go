// Package pipeline implements SALIENT++'s distributed minibatch training
// loop with the deep minibatch-preparation pipeline of §4.3 / Appendix D:
// neighborhood sampling, the three-collective feature gather (request
// counts, request ids, feature payloads), host↔device bookkeeping, model
// computation, and gradient synchronization — with up to PipelineDepth
// minibatches in flight so communication overlaps computation.
//
// Each "machine" is one goroutine group driving its own communicators.
// Collectives are matched across ranks by construction: every rank
// processes the same number of rounds per epoch (padding with empty
// batches when training-vertex counts are ragged) and issues feature
// gathers on one communicator and gradient all-reduces on another, the
// same separation NCCL streams give the original system.
package pipeline

import (
	"fmt"
	"sync"
	"time"

	"salientpp/internal/dist"
	"salientpp/internal/nn"
	"salientpp/internal/rng"
	"salientpp/internal/sample"
	"salientpp/internal/tensor"
)

// Config controls one rank's training loop.
type Config struct {
	// Fanouts are the sampling fanouts (training).
	Fanouts []int
	// BatchSize is the per-machine minibatch size.
	BatchSize int
	// PipelineDepth bounds in-flight minibatches; SALIENT++ uses 10.
	// Depth 1 degenerates to fully sequential batch preparation.
	PipelineDepth int
	// SamplerWorkers is the shared-memory sampling parallelism per machine.
	SamplerWorkers int
	// Parallelism bounds setup-time analysis parallelism — the sharded VIP
	// propagation and cache-policy construction. 0 uses GOMAXPROCS; results
	// are identical for every setting.
	Parallelism int
	// LR is the Adam learning rate.
	LR float64
	// Seed drives sampling and dropout; combined with rank and epoch.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 10
	}
	if c.SamplerWorkers <= 0 {
		c.SamplerWorkers = 1
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	return c
}

// Rank is one machine's training state.
type Rank struct {
	cfg      Config
	commFeat dist.Comm
	commGrad dist.Comm
	store    *dist.Store
	sampler  *sample.Sampler
	model    *nn.Model
	opt      *nn.Adam
	trainIDs []int32
	labels   []int32 // global labels (label < 0 means unlabeled)
	rounds   int     // collective rounds per epoch (global max batches)

	// Per-batch scratch reused across the epoch so the steady-state loop
	// allocates nothing: pooled loss-gradient matrices and the label
	// staging buffer.
	pool     *tensor.Pool
	labelBuf []int32
}

// EpochStats aggregates one training epoch on one rank.
type EpochStats struct {
	Loss        float64 // mean training loss over real batches
	Accuracy    float64 // mean training accuracy over real batches
	Batches     int     // real (non-padding) batches
	Gather      dist.GatherStats
	BytesSent   int64 // feature-communication bytes this epoch
	Duration    time.Duration
	SampleTime  time.Duration // cumulative sampling stage time
	GatherTime  time.Duration // cumulative feature-collection stage time
	ComputeTime time.Duration // cumulative model fwd/bwd/optimizer time
}

// NewRank wires one machine. labels must cover all global vertices
// (unlabeled entries < 0); trainIDs are the machine's local training
// vertices (global ids); globalMaxBatches is max over ranks of
// ceil(|T_k|/B) so that collective counts match.
func NewRank(cfg Config, commFeat, commGrad dist.Comm, store *dist.Store, s *sample.Sampler, m *nn.Model, trainIDs, labels []int32, globalMaxBatches int) (*Rank, error) {
	cfg = cfg.withDefaults()
	if commFeat.Rank() != commGrad.Rank() || commFeat.Size() != commGrad.Size() {
		return nil, fmt.Errorf("pipeline: feature and gradient communicators disagree")
	}
	if globalMaxBatches <= 0 {
		return nil, fmt.Errorf("pipeline: non-positive round count %d", globalMaxBatches)
	}
	return &Rank{
		cfg:      cfg,
		commFeat: commFeat,
		commGrad: commGrad,
		store:    store,
		sampler:  s,
		model:    m,
		opt:      nn.NewAdam(cfg.LR),
		trainIDs: trainIDs,
		labels:   labels,
		rounds:   globalMaxBatches,
		pool:     tensor.NewPool(),
	}, nil
}

// Model exposes the rank's model (e.g. for evaluation or weight checks).
func (r *Rank) Model() *nn.Model { return r.model }

// Store exposes the rank's partitioned feature store. Serving attaches
// here: Store().Sibling gives an independently-communicating store over
// the same read-only shard and cache.
func (r *Rank) Store() *dist.Store { return r.store }

// Sampler exposes the rank's training sampler (immutable; safe to share).
func (r *Rank) Sampler() *sample.Sampler { return r.sampler }

// preparedBatch flows between pipeline stages.
type preparedBatch struct {
	mfg   *sample.MFG
	feats *tensor.Matrix
	stats dist.GatherStats
	gtime time.Duration
	stime time.Duration
	empty bool
}

// TrainEpoch runs one synchronized training epoch. All ranks must call it
// with the same epoch number.
func (r *Rank) TrainEpoch(epoch int) (EpochStats, error) {
	start := time.Now()
	base := rng.New(r.cfg.Seed ^ (uint64(epoch+1) * 0x9e3779b97f4a7c15)).Split(uint64(r.commFeat.Rank()))
	batches := sample.EpochBatches(r.trainIDs, r.cfg.BatchSize, base.Split(0))
	// Pad to the global round count with empty batches.
	real := len(batches)
	for len(batches) < r.rounds {
		batches = append(batches, nil)
	}
	if len(batches) > r.rounds {
		return EpochStats{}, fmt.Errorf("pipeline: rank %d has %d batches for %d rounds", r.commFeat.Rank(), len(batches), r.rounds)
	}

	bytesBefore := r.commFeat.BytesSent()
	var stats EpochStats
	stats.Batches = real

	// abort wakes every pipeline stage when the epoch exits early (gather
	// or compute failure): sampling workers blocked on a pipeline slot, the
	// slot forwarder, and the feature-collection stage all select on it, so
	// no goroutine (or pipeline slot) leaks on the error path.
	abort := make(chan struct{})
	var abortOnce sync.Once
	closeAbort := func() { abortOnce.Do(func() { close(abort) }) }
	defer closeAbort()

	// Stage A: parallel sampling, streamed in batch order. The semaphore
	// enforces the paper's bound of PipelineDepth in-flight minibatches:
	// workers acquire before sampling, the training loop releases after
	// the batch finishes its model update.
	inflight := make(chan struct{}, r.cfg.PipelineDepth)
	sampled := r.streamSampled(batches, base.Split(1), inflight, abort)

	// Stage B: feature collection (three matched collectives per round).
	ready := make(chan preparedBatch, r.cfg.PipelineDepth)
	errCh := make(chan error, 1)
	go func() {
		defer close(ready)
		for sb := range sampled {
			t0 := time.Now()
			feats, gstats, err := r.store.Gather(sb.mfg.InputIDs())
			if err != nil {
				errCh <- err
				closeAbort()
				return
			}
			// RemoteByPeer aliases store scratch the next Gather reuses;
			// only the scalar counts cross into the compute stage.
			gstats.RemoteByPeer = nil
			pb := preparedBatch{mfg: sb.mfg, feats: feats, stats: gstats, gtime: time.Since(t0), stime: sb.stime, empty: sb.empty}
			select {
			case ready <- pb:
			case <-abort:
				return
			}
		}
	}()

	// Stage C: model computation and gradient synchronization.
	grads := r.model.Params()
	flat := make([]float32, 0, r.model.NumParameters())
	for pb := range ready {
		t0 := time.Now()
		logits, err := r.model.Forward(pb.mfg, pb.feats, true)
		if err != nil {
			return stats, err
		}
		if cap(r.labelBuf) < len(pb.mfg.Seeds) {
			r.labelBuf = make([]int32, len(pb.mfg.Seeds))
		}
		labels := r.labelBuf[:len(pb.mfg.Seeds)]
		for i, v := range pb.mfg.Seeds {
			labels[i] = r.labels[v]
		}
		dL := r.pool.Get(logits.Rows, logits.Cols)
		loss := tensor.SoftmaxCrossEntropy(logits, labels, dL)
		if !pb.empty {
			stats.Loss += loss
			stats.Accuracy += tensor.Accuracy(logits, labels)
			stats.Gather.LocalGPU += pb.stats.LocalGPU
			stats.Gather.LocalCPU += pb.stats.LocalCPU
			stats.Gather.CacheHits += pb.stats.CacheHits
			stats.Gather.RemoteFetch += pb.stats.RemoteFetch
			stats.GatherTime += pb.gtime
			stats.SampleTime += pb.stime
		}
		r.model.ZeroGrad()
		r.model.Backward(dL)
		r.pool.Put(dL)

		// Gradient all-reduce (mean across ranks) on the dedicated
		// communicator, overlapping the next batches' feature collectives.
		flat = flat[:0]
		for _, p := range grads {
			flat = append(flat, p.G.Data...)
		}
		if err := r.commGrad.AllReduceSum(flat); err != nil {
			return stats, err
		}
		inv := float32(1) / float32(r.commGrad.Size())
		off := 0
		for _, p := range grads {
			for i := range p.G.Data {
				p.G.Data[i] = flat[off+i] * inv
			}
			off += len(p.G.Data)
		}
		r.opt.Step(grads)
		stats.ComputeTime += time.Since(t0)
		r.store.Release(pb.feats) // recycle the batch's feature matrix
		pb.mfg.Release()          // recycle the batch's sampling buffers
		<-inflight                // retire the batch: frees one pipeline slot
	}
	select {
	case err := <-errCh:
		return stats, err
	default:
	}
	// The last batch's intermediates would otherwise stay pinned in the
	// model arena until the next epoch's first Forward.
	r.model.ReleaseBatch()
	if real > 0 {
		stats.Loss /= float64(real)
		stats.Accuracy /= float64(real)
	}
	stats.BytesSent = r.commFeat.BytesSent() - bytesBefore
	stats.Duration = time.Since(start)
	return stats, nil
}

// streamSampled runs the sampling stage: SamplerWorkers goroutines sample
// batches which are forwarded in order. Workers acquire a slot from
// inflight before sampling; the training loop releases slots as batches
// retire, bounding in-flight minibatches by PipelineDepth. Closing abort
// unwinds every goroutine here even when no slot will ever be released
// again (the error path).
func (r *Rank) streamSampled(batches [][]int32, base *rng.RNG, inflight chan struct{}, abort <-chan struct{}) <-chan sampledBatch {
	slots := make([]chan sampledBatch, len(batches))
	for i := range slots {
		slots[i] = make(chan sampledBatch, 1)
	}
	var next int
	var mu sync.Mutex
	workers := r.cfg.SamplerWorkers
	if workers > len(batches) {
		workers = len(batches)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		go func() {
			worker := r.sampler.AcquireWorker(rng.New(0))
			defer r.sampler.ReleaseWorker(worker)
			for {
				select {
				case inflight <- struct{}{}: // claim a pipeline slot
				case <-abort:
					return
				}
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(batches) {
					<-inflight // nothing left; return the slot
					return
				}
				worker.SetRNG(base.Split(uint64(i)))
				t0 := time.Now()
				m := worker.Sample(batches[i])
				// Capacity-1 channel with this goroutine as sole producer:
				// the send never blocks.
				slots[i] <- sampledBatch{mfg: m, empty: len(batches[i]) == 0, stime: time.Since(t0)}
			}
		}()
	}
	out := make(chan sampledBatch, r.cfg.PipelineDepth)
	go func() {
		defer close(out)
		for i := range slots {
			var sb sampledBatch
			select {
			case sb = <-slots[i]:
			case <-abort:
				return
			}
			select {
			case out <- sb:
			case <-abort:
				sb.mfg.Release()
				return
			}
		}
	}()
	return out
}

type sampledBatch struct {
	mfg   *sample.MFG
	empty bool
	stime time.Duration
}

// Evaluate runs sampled inference over ids (this rank's local evaluation
// vertices) and returns (correct, total). Fanouts may differ from training
// (the paper evaluates with (20,20,20)). All ranks must call Evaluate
// together with the same rounds; rounds must be >= ceil(len(ids)/batch)
// for every rank (use the global max).
func (r *Rank) Evaluate(ids []int32, fanouts []int, batch, rounds, epoch int) (int, int, error) {
	s, err := sample.NewSampler(r.sampler.Graph(), fanouts)
	if err != nil {
		return 0, 0, err
	}
	base := rng.New(r.cfg.Seed ^ 0xe7a1 ^ uint64(epoch)<<20).Split(uint64(r.commFeat.Rank()))
	w := s.NewWorker(base.Split(7))
	correct, total := 0, 0
	for round := 0; round < rounds; round++ {
		lo := round * batch
		var seeds []int32
		if lo < len(ids) {
			hi := lo + batch
			if hi > len(ids) {
				hi = len(ids)
			}
			seeds = ids[lo:hi]
		}
		mfg := w.Sample(seeds)
		feats, _, err := r.store.Gather(mfg.InputIDs())
		if err != nil {
			return correct, total, err
		}
		logits, err := r.model.Forward(mfg, feats, false)
		// Inference never runs Backward, so the input features are dead as
		// soon as Forward returns (logits live in the model's own arena).
		r.store.Release(feats)
		if err != nil {
			return correct, total, err
		}
		for i, v := range mfg.Seeds {
			if r.labels[v] < 0 {
				continue
			}
			total++
			if int32(tensor.ArgmaxRow(logits.Row(i))) == r.labels[v] {
				correct++
			}
		}
		mfg.Release()
	}
	r.model.ReleaseBatch()
	return correct, total, nil
}
