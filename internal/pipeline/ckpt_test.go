package pipeline

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"salientpp/internal/ckpt"
	"salientpp/internal/dataset"
	"salientpp/internal/dist"
)

// crashDataset is sized so each epoch has several rounds (checkpoints land
// mid-epoch) while the three full training runs per transport stay fast.
func crashDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.SyntheticConfig{
		Name: "crash", NumVertices: 1000, AvgDegree: 8, FeatureDim: 8,
		NumClasses: 3, TrainFrac: 0.3, ValFrac: 0.1, FeatureNoise: 0.4,
		Materialize: true, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// crashConfig uses Dropout > 0 deliberately: the dropout RNG stream
// advances sequentially across batches, so a resume is only bitwise
// correct if the checkpoint captured and restored it.
func crashConfig(useTCP bool) ClusterConfig {
	return ClusterConfig{
		K: 2, Alpha: 0.2, GPUFraction: 1, VIPReorder: true,
		Hidden: 12, Layers: 2, Dropout: 0.3, UseTCP: useTCP,
		Train: Config{
			Fanouts: []int{4, 4}, BatchSize: 32,
			PipelineDepth: 3, SamplerWorkers: 2, LR: 0.01, Seed: 7,
		},
		ModelSeed: 9,
	}
}

// killComm fails (and closes) its rank's entire communicator pair once the
// shared collective counter reaches failAt — the in-process equivalent of
// a machine dying mid-epoch at an arbitrary batch: every group member's
// blocked or future collective errors out instead of deadlocking.
type killComm struct {
	dist.Comm
	grad   dist.Comm
	calls  *atomic.Int64
	failAt int64
}

func (k *killComm) AllToAll(send [][]byte) ([][]byte, error) {
	if k.calls.Add(1) >= k.failAt {
		k.Comm.Close()
		k.grad.Close()
		return nil, fmt.Errorf("injected rank death")
	}
	return k.Comm.AllToAll(send)
}

type epochResult struct {
	loss, acc []float64 // per rank
	remote    int64
}

func runEpochs(t *testing.T, cl *Cluster, from, to int, out map[int]epochResult) error {
	t.Helper()
	for e := from; e < to; e++ {
		stats, err := cl.TrainEpochAll(e)
		if err != nil {
			return err
		}
		r := epochResult{}
		for _, s := range stats {
			r.loss = append(r.loss, s.Loss)
			r.acc = append(r.acc, s.Accuracy)
			r.remote += int64(s.Gather.RemoteFetch)
		}
		out[e] = r
	}
	return nil
}

func flatWeights(cl *Cluster) []float32 {
	var out []float32
	for _, p := range cl.Ranks[0].Model().Params() {
		out = append(out, p.W.Data...)
	}
	return out
}

// testCrashRecoveryBitwise is the tentpole guarantee: kill a rank at an
// arbitrary batch mid-epoch, restore from the latest checkpoint into a
// fresh cluster, finish training — and the final weights, every epoch's
// loss/accuracy, and the per-epoch remote-fetch counts are bitwise
// identical to the uninterrupted same-seed run.
func testCrashRecoveryBitwise(t *testing.T, useTCP bool) {
	d := crashDataset(t)
	const epochs = 3

	// Reference: uninterrupted, no checkpointing.
	ref := map[int]epochResult{}
	refCl, err := NewCluster(d, crashConfig(useTCP))
	if err != nil {
		t.Fatal(err)
	}
	if err := runEpochs(t, refCl, 0, epochs, ref); err != nil {
		t.Fatal(err)
	}
	refW := flatWeights(refCl)
	refCl.Close()

	// Crashed run: checkpoint every 2 rounds and every epoch boundary;
	// the shared collective counter kills both ranks' comms partway
	// through epoch 1 (each epoch issues 3 gather collectives per round
	// per rank; with ~5 rounds per rank that is ~30 per epoch, so 40 lands
	// mid-epoch-1 at an arbitrary in-flight batch).
	dir := t.TempDir()
	cfg := crashConfig(useTCP)
	cfg.Checkpoint = ckpt.Config{Dir: dir, EveryRounds: 2, EveryEpochs: 1, Retain: 4}
	var calls atomic.Int64
	cfg.WrapComm = func(rank int, feat, grad dist.Comm) (dist.Comm, dist.Comm) {
		return &killComm{Comm: feat, grad: grad, calls: &calls, failAt: 40}, grad
	}
	got := map[int]epochResult{}
	crashCl, err := NewCluster(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	crashErr := runEpochs(t, crashCl, 0, epochs, got)
	crashCl.Close()
	if crashErr == nil {
		t.Fatal("injected rank death did not surface")
	}
	if _, ok := got[0]; !ok {
		t.Fatal("crash landed before epoch 0 completed; fix failAt")
	}
	if _, ok := got[1]; ok {
		t.Fatal("crash landed after epoch 1 completed; fix failAt")
	}

	// Restore from the latest checkpoint into a fresh cluster (fresh
	// comms, topology restored from the file — no re-partitioning, no VIP
	// re-analysis) and finish the run.
	state, path, err := ckpt.LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if state.Step.Epoch != 1 {
		t.Fatalf("latest checkpoint %s is at epoch %d, expected mid-run epoch 1", path, state.Step.Epoch)
	}
	rcfg := crashConfig(useTCP)
	rcfg.Checkpoint = ckpt.Config{Dir: dir, EveryRounds: 2, EveryEpochs: 1, Retain: 4}
	rcfg.Resume = state
	resCl, err := NewCluster(d, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer resCl.Close()
	if first := resCl.FirstEpoch(); first != state.Step.Epoch {
		t.Fatalf("FirstEpoch() = %d, checkpoint says %d", first, state.Step.Epoch)
	}
	if err := runEpochs(t, resCl, resCl.FirstEpoch(), epochs, got); err != nil {
		t.Fatal(err)
	}

	// Bitwise equivalence of the combined (crashed + resumed) trajectory.
	for e := 0; e < epochs; e++ {
		want, have := ref[e], got[e]
		if have.loss == nil {
			t.Fatalf("epoch %d missing from the recovered trajectory", e)
		}
		for r := range want.loss {
			if want.loss[r] != have.loss[r] {
				t.Errorf("epoch %d rank %d loss %.17g != reference %.17g", e, r, have.loss[r], want.loss[r])
			}
			if want.acc[r] != have.acc[r] {
				t.Errorf("epoch %d rank %d accuracy %.17g != reference %.17g", e, r, have.acc[r], want.acc[r])
			}
		}
		if want.remote != have.remote {
			t.Errorf("epoch %d remote fetches %d != reference %d", e, have.remote, want.remote)
		}
	}
	gotW := flatWeights(resCl)
	if len(gotW) != len(refW) {
		t.Fatalf("weight count %d != reference %d", len(gotW), len(refW))
	}
	for i := range refW {
		if refW[i] != gotW[i] {
			t.Fatalf("final weights diverge at %d: %v != reference %v (first difference)", i, gotW[i], refW[i])
		}
	}
}

func TestCrashRecoveryBitwiseInProcess(t *testing.T) { testCrashRecoveryBitwise(t, false) }
func TestCrashRecoveryBitwiseTCP(t *testing.T)       { testCrashRecoveryBitwise(t, true) }

// TestMidEpochResumeBitwise deterministically exercises the mid-epoch
// cursor (the crash tests may legitimately restore from an epoch boundary
// when the kill lands before a mid-epoch barrier assembles): it trains an
// uninterrupted checkpointed run, then resumes from a specific *mid-epoch*
// file — round cursor > 0, partially accumulated statistics — and demands
// the re-trained tail match the reference bitwise, including the resumed
// epoch's reported loss, accuracy, and remote-fetch count.
func TestMidEpochResumeBitwise(t *testing.T) {
	d := crashDataset(t)
	const epochs = 2
	dir := t.TempDir()
	cfg := crashConfig(false)
	cfg.Checkpoint = ckpt.Config{Dir: dir, EveryRounds: 2, EveryEpochs: 1, Retain: 100}
	ref := map[int]epochResult{}
	refCl, err := NewCluster(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := runEpochs(t, refCl, 0, epochs, ref); err != nil {
		t.Fatal(err)
	}
	refW := flatWeights(refCl)
	refCl.Close()

	// Pick a mid-epoch checkpoint of epoch 1 (EveryRounds=2 guarantees one
	// exists for every epoch with > 2 rounds; Retain keeps them all).
	target := ckpt.Step{Epoch: 1, Round: 2}
	state, err := ckpt.Load(filepath.Join(dir, ckpt.FileName(target)))
	if err != nil {
		t.Fatalf("mid-epoch checkpoint %v missing: %v", target, err)
	}
	if state.Step != target {
		t.Fatalf("loaded step %+v, want %+v", state.Step, target)
	}
	if state.Ranks[0].Partial.Batches == 0 {
		t.Fatal("mid-epoch checkpoint carries no partial statistics")
	}

	rcfg := crashConfig(false)
	rcfg.Resume = state
	resCl, err := NewCluster(d, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer resCl.Close()
	got := map[int]epochResult{}
	if err := runEpochs(t, resCl, resCl.FirstEpoch(), epochs, got); err != nil {
		t.Fatal(err)
	}
	for e := 1; e < epochs; e++ {
		want, have := ref[e], got[e]
		for r := range want.loss {
			if want.loss[r] != have.loss[r] || want.acc[r] != have.acc[r] {
				t.Errorf("epoch %d rank %d: loss/acc %.17g/%.17g != reference %.17g/%.17g",
					e, r, have.loss[r], have.acc[r], want.loss[r], want.acc[r])
			}
		}
		if want.remote != have.remote {
			t.Errorf("epoch %d remote fetches %d != reference %d", e, have.remote, want.remote)
		}
	}
	gotW := flatWeights(resCl)
	for i := range refW {
		if refW[i] != gotW[i] {
			t.Fatalf("weights diverge at %d after mid-epoch resume", i)
		}
	}
}

// TestResumeValidation checks the restore path rejects configuration
// drift loudly instead of silently training something else.
func TestResumeValidation(t *testing.T) {
	d := crashDataset(t)
	dir := t.TempDir()
	cfg := crashConfig(false)
	cfg.Checkpoint = ckpt.Config{Dir: dir, EveryEpochs: 1}
	cl, err := NewCluster(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.TrainEpochAll(0); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	state, _, err := ckpt.LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}

	bad := crashConfig(false)
	bad.K = 3
	bad.Resume = state
	if _, err := NewCluster(d, bad); err == nil {
		t.Fatal("resume with mismatched K was accepted")
	}

	bad = crashConfig(false)
	bad.Train.BatchSize = 16 // changes rounds per epoch
	bad.Resume = state
	if _, err := NewCluster(d, bad); err == nil {
		t.Fatal("resume with drifted batch size was accepted")
	}

	bad = crashConfig(false)
	bad.Train.Seed = 8 // different batch permutation, same everything else
	bad.Resume = state
	if _, err := NewCluster(d, bad); err == nil {
		t.Fatal("resume with drifted seed was accepted")
	}

	bad = crashConfig(false)
	bad.Train.Fanouts = []int{5, 4} // same layer count and param shapes
	bad.Resume = state
	if _, err := NewCluster(d, bad); err == nil {
		t.Fatal("resume with drifted fanouts was accepted")
	}

	good := crashConfig(false)
	good.Resume = state
	cl2, err := NewCluster(d, good)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if _, err := cl2.TrainEpochAll(0); err == nil {
		t.Fatal("training an epoch before the resume point was accepted")
	}
	if _, err := cl2.TrainEpochAll(cl2.FirstEpoch()); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointWriteFailureAborts pins the failure mode of the saver
// itself: Offer surfaces a write error only on the last-arriving rank, so
// without the group-wide teardown in failCheckpoint its peers — already
// past their own nil Offer — would block forever in the next gradient
// all-reduce and the run would hang instead of reporting (say) a full
// disk.
func TestCheckpointWriteFailureAborts(t *testing.T) {
	d := crashDataset(t)
	dir := filepath.Join(t.TempDir(), "ck")
	cfg := crashConfig(false)
	cfg.Checkpoint = ckpt.Config{Dir: dir, EveryRounds: 2, EveryEpochs: 1}
	cl, err := NewCluster(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Sabotage the directory before training: replace it with a regular
	// file so the next save's temp-file creation fails. (Permission bits
	// cannot be used here — tests may run as root, which ignores them.)
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o666); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := cl.TrainEpochAll(0)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("checkpoint write failure was swallowed")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("training hung after a checkpoint write failure: peers were not unwound")
	}
}

// TestCheckpointIdleAddsNoAllocations guards the acceptance criterion that
// checkpoint support adds no steady-state allocations to the warm batch
// loop: an epoch trained with an (armed but never firing) saver must
// allocate no more than one without any saver at all. The per-round cost
// of checkpointing on non-checkpoint rounds is one integer check.
func TestCheckpointIdleAddsNoAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates shadow state on the pipeline's goroutine handoffs; the non-race leg enforces the bound")
	}
	d := crashDataset(t)
	build := func(withSaver bool) *Cluster {
		cfg := crashConfig(false)
		cfg.K = 1
		cfg.Dropout = 0 // keep the measured loop arithmetic-only
		if withSaver {
			// Armed saver that never fires during the measured epochs.
			cfg.Checkpoint = ckpt.Config{Dir: t.TempDir(), EveryRounds: 1 << 30}
		}
		cl, err := NewCluster(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	measure := func(cl *Cluster) float64 {
		epoch := 0
		train := func() {
			if _, err := cl.TrainEpochAll(epoch); err != nil {
				t.Fatal(err)
			}
			epoch++
		}
		for i := 0; i < 3; i++ {
			train() // warm pools, arenas, and high-water scratch
		}
		return testing.AllocsPerRun(5, train)
	}
	plain := build(false)
	defer plain.Close()
	armed := build(true)
	defer armed.Close()
	base := measure(plain)
	withSaver := measure(armed)
	// Each epoch allocates a fixed harness set (channels, goroutines, the
	// batch permutation); the armed saver must add nothing to it. Slack of
	// 2 absorbs scheduler-dependent channel-buffer noise.
	if withSaver > base+2 {
		t.Fatalf("idle checkpointing added allocations to the warm loop: %.1f vs %.1f per epoch", withSaver, base)
	}
}
