package pipeline

import (
	"path/filepath"
	"strings"
	"testing"

	"salientpp/internal/ckpt"
)

// codecOutcome is one full-cluster training run's fingerprint.
type codecOutcome struct {
	weights []float32
	loss    float64
	remote  int64
	bytes   int64
	batches int
}

func runCodecEpoch(t *testing.T, codec string, useTCP bool) codecOutcome {
	t.Helper()
	ds := smallDataset(t)
	cfg := smallConfig()
	cfg.Codec = codec
	cfg.UseTCP = useTCP
	cl, err := NewCluster(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var o codecOutcome
	stats, err := cl.TrainEpochAll(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stats {
		o.loss += s.Loss
		o.remote += int64(s.Gather.RemoteFetch)
		o.bytes += s.BytesSent
		o.batches += s.Batches
	}
	for _, p := range cl.Ranks[0].Model().Params() {
		o.weights = append(o.weights, p.W.Data...)
	}
	return o
}

// TestCodecCrossTransportDeterminism extends the cross-transport guarantee
// to the lossy codecs: a same-seed training epoch under fp16 or int8 must
// produce bitwise-identical weights, loss, and remote-fetch counts on the
// in-process and loopback-TCP transports — the decode-side dequantize is a
// pure function of the wire bytes, not of the transport that carried them.
func TestCodecCrossTransportDeterminism(t *testing.T) {
	for _, codec := range []string{"fp16", "int8"} {
		t.Run(codec, func(t *testing.T) {
			inproc := runCodecEpoch(t, codec, false)
			tcp := runCodecEpoch(t, codec, true)
			if inproc.batches == 0 {
				t.Fatal("no batches trained")
			}
			if tcp.loss != inproc.loss {
				t.Errorf("loss differs across transports: tcp %.17g, in-process %.17g", tcp.loss, inproc.loss)
			}
			if tcp.remote != inproc.remote {
				t.Errorf("remote fetches differ across transports: tcp %d vs %d", tcp.remote, inproc.remote)
			}
			for i := range inproc.weights {
				if inproc.weights[i] != tcp.weights[i] {
					t.Fatalf("%s weights diverge across transports at %d (first difference)", codec, i)
				}
			}
		})
	}
}

// TestCodecShrinksBytesAtEqualRemoteCounts pins the tentpole claim on the
// real training loop: switching fp32→fp16 cuts feature-communication bytes
// by at least 45% while fetching exactly the same remote rows (the codec
// compresses traffic, it must never change what is fetched), and int8 cuts
// further. fp32 itself must be byte-identical to the historical format,
// which the committed BENCH baselines and TestCrossTransportDeterminism
// already pin — here we just anchor the ordering.
func TestCodecShrinksBytesAtEqualRemoteCounts(t *testing.T) {
	fp32 := runCodecEpoch(t, "fp32", false)
	fp16 := runCodecEpoch(t, "fp16", false)
	i8 := runCodecEpoch(t, "int8", false)
	if fp32.remote == 0 {
		t.Fatal("test run had no remote traffic; cannot exercise the codec")
	}
	if fp16.remote != fp32.remote || i8.remote != fp32.remote {
		t.Fatalf("remote-fetch counts drifted across codecs: fp32 %d, fp16 %d, int8 %d",
			fp32.remote, fp16.remote, i8.remote)
	}
	if float64(fp16.bytes) > 0.55*float64(fp32.bytes) {
		t.Fatalf("fp16 shipped %d bytes vs fp32's %d, want ≥ 45%% reduction", fp16.bytes, fp32.bytes)
	}
	if i8.bytes >= fp16.bytes {
		t.Fatalf("int8 shipped %d bytes, fp16 %d; int8 must be smaller", i8.bytes, fp16.bytes)
	}
	// The lossy run still trains: loss stays in the same ballpark as fp32
	// (quantization noise must not destabilize the epoch).
	if fp16.loss <= 0 || i8.loss <= 0 {
		t.Fatalf("degenerate losses under lossy codecs: fp16 %v, int8 %v", fp16.loss, i8.loss)
	}
}

// TestResumeRejectsCodecDrift: the wire codec is run identity. A checkpoint
// taken under fp16 must refuse to resume under fp32 (silent numerical
// divergence) and resume cleanly under fp16.
func TestResumeRejectsCodecDrift(t *testing.T) {
	d := smallDataset(t)
	dir := t.TempDir()
	cfg := smallConfig()
	cfg.Codec = "fp16"
	cfg.Checkpoint = ckpt.Config{Dir: dir, EveryEpochs: 1}
	cl, err := NewCluster(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.TrainEpochAll(0); err != nil {
		cl.Close()
		t.Fatal(err)
	}
	cl.Close()
	state, path, err := ckpt.LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if state.Codec != "fp16" {
		t.Fatalf("checkpoint %s records codec %q, want fp16", filepath.Base(path), state.Codec)
	}

	drifted := smallConfig()
	drifted.Codec = "" // the fp32 default
	drifted.Resume = state
	if _, err := NewCluster(d, drifted); err == nil {
		t.Fatal("resume with a drifted wire codec was accepted")
	} else if !strings.Contains(err.Error(), "wire codec") {
		t.Fatalf("drift error %q does not mention the wire codec", err)
	}

	same := smallConfig()
	same.Codec = "fp16"
	same.Resume = state
	cl2, err := NewCluster(d, same)
	if err != nil {
		t.Fatalf("resume with the matching codec failed: %v", err)
	}
	cl2.Close()
}
