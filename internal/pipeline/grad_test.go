package pipeline

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"salientpp/internal/ckpt"
)

// gradOutcome fingerprints one training run under a gradient codec.
type gradOutcome struct {
	weights   []float32
	loss      float64
	gradBytes int64
	batches   int
}

func runGradEpochs(t *testing.T, gradCodec string, useTCP bool, overlap bool, epochs int) gradOutcome {
	t.Helper()
	ds := smallDataset(t)
	cfg := smallConfig()
	cfg.UseTCP = useTCP
	cfg.Train.GradCodec = gradCodec
	cfg.Train.NoGradOverlap = !overlap
	cl, err := NewCluster(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var o gradOutcome
	for e := 0; e < epochs; e++ {
		stats, err := cl.TrainEpochAll(e)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range stats {
			o.loss += s.Loss
			o.gradBytes += s.GradBytesSent
			o.batches += s.Batches
		}
	}
	o.weights = flatWeights(cl)
	return o
}

// TestGradCodecCrossTransportDeterminism extends the cross-transport
// guarantee to the compressed gradient all-reduce: a same-seed run under a
// lossy gradient codec must produce bitwise-identical weights and losses on
// the in-process and loopback-TCP transports. The reduce is an all-gather
// plus a rank-ordered local sum, so the result is a pure function of the
// encoded bytes — never of the transport or arrival order.
func TestGradCodecCrossTransportDeterminism(t *testing.T) {
	for _, codec := range []string{"fp16", "int8"} {
		t.Run(codec, func(t *testing.T) {
			inproc := runGradEpochs(t, codec, false, true, 2)
			tcp := runGradEpochs(t, codec, true, true, 2)
			if inproc.batches == 0 {
				t.Fatal("no batches trained")
			}
			if tcp.loss != inproc.loss {
				t.Errorf("loss differs across transports: tcp %.17g, in-process %.17g", tcp.loss, inproc.loss)
			}
			if tcp.gradBytes != inproc.gradBytes {
				t.Errorf("gradient bytes differ across transports: tcp %d vs %d", tcp.gradBytes, inproc.gradBytes)
			}
			for i := range inproc.weights {
				if inproc.weights[i] != tcp.weights[i] {
					t.Fatalf("%s weights diverge across transports at %d (first difference)", codec, i)
				}
			}
		})
	}
}

// TestGradCodecGOMAXPROCSDeterminism pins scheduler independence: the
// overlapped reduce runs on its own goroutine concurrently with backward
// compute, so any hidden ordering dependence would surface as weight drift
// between a single-threaded and a parallel schedule.
func TestGradCodecGOMAXPROCSDeterminism(t *testing.T) {
	wide := runGradEpochs(t, "int8", false, true, 2)
	prev := runtime.GOMAXPROCS(1)
	narrow := runGradEpochs(t, "int8", false, true, 2)
	runtime.GOMAXPROCS(prev)
	if narrow.loss != wide.loss {
		t.Errorf("loss differs across GOMAXPROCS: 1 proc %.17g, %d procs %.17g", narrow.loss, prev, wide.loss)
	}
	for i := range wide.weights {
		if wide.weights[i] != narrow.weights[i] {
			t.Fatalf("weights diverge across GOMAXPROCS at %d (first difference)", i)
		}
	}
}

// TestGradOverlapDoesNotChangeResults: the overlapped schedule is a pure
// latency optimization. Layer reduces retire in a fixed order on the
// reducer goroutine, so enabling overlap must leave the entire training
// trajectory bitwise intact.
func TestGradOverlapDoesNotChangeResults(t *testing.T) {
	for _, codec := range []string{"fp32", "int8"} {
		t.Run(codec, func(t *testing.T) {
			on := runGradEpochs(t, codec, false, true, 2)
			off := runGradEpochs(t, codec, false, false, 2)
			if on.loss != off.loss {
				t.Errorf("loss differs with overlap toggled: on %.17g, off %.17g", on.loss, off.loss)
			}
			if on.gradBytes != off.gradBytes {
				t.Errorf("gradient bytes differ with overlap toggled: on %d, off %d", on.gradBytes, off.gradBytes)
			}
			for i := range on.weights {
				if on.weights[i] != off.weights[i] {
					t.Fatalf("%s weights diverge with overlap toggled at %d (first difference)", codec, i)
				}
			}
		})
	}
}

// TestGradCodecShrinksBytes pins the headline byte cut on the real training
// loop: fp16 halves the gradient payload exactly (2 bytes per element, no
// framing), int8 cuts further (1 byte per element + 4 bytes per-row scale),
// and the lossy runs still train.
func TestGradCodecShrinksBytes(t *testing.T) {
	fp32 := runGradEpochs(t, "fp32", false, true, 1)
	fp16 := runGradEpochs(t, "fp16", false, true, 1)
	i8 := runGradEpochs(t, "int8", false, true, 1)
	if fp32.gradBytes == 0 {
		t.Fatal("run reported no gradient traffic; accounting is broken")
	}
	if float64(fp16.gradBytes) > 0.501*float64(fp32.gradBytes) {
		t.Fatalf("fp16 shipped %d gradient bytes vs fp32's %d, want ≥ 50%% reduction", fp16.gradBytes, fp32.gradBytes)
	}
	if i8.gradBytes >= fp16.gradBytes {
		t.Fatalf("int8 shipped %d gradient bytes, fp16 %d; int8 must be smaller", i8.gradBytes, fp16.gradBytes)
	}
	if fp16.loss <= 0 || i8.loss <= 0 {
		t.Fatalf("degenerate losses under lossy gradient codecs: fp16 %v, int8 %v", fp16.loss, i8.loss)
	}
}

// TestGradResidualSurvivesResume is the error-feedback state's durability
// pin: under int8 every round folds the previous round's quantization error
// back into the gradient, so the residual is part of the optimizer
// trajectory. A mid-epoch checkpoint/restore cycle must reproduce the
// uninterrupted run bitwise — which can only happen if the residuals were
// saved and restored exactly.
func TestGradResidualSurvivesResume(t *testing.T) {
	d := crashDataset(t)
	const epochs = 2
	dir := t.TempDir()
	cfg := crashConfig(false)
	cfg.Train.GradCodec = "int8"
	cfg.Checkpoint = ckpt.Config{Dir: dir, EveryRounds: 2, EveryEpochs: 1, Retain: 100}
	ref := map[int]epochResult{}
	refCl, err := NewCluster(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := runEpochs(t, refCl, 0, epochs, ref); err != nil {
		t.Fatal(err)
	}
	refW := flatWeights(refCl)
	refCl.Close()

	// A mid-epoch file of epoch 1: round cursor > 0, residuals mid-stream.
	target := ckpt.Step{Epoch: 1, Round: 2}
	state, err := ckpt.Load(filepath.Join(dir, ckpt.FileName(target)))
	if err != nil {
		t.Fatalf("mid-epoch checkpoint %v missing: %v", target, err)
	}
	if state.GradCodec != "int8" {
		t.Fatalf("checkpoint records gradient codec %q, want int8", state.GradCodec)
	}
	var nonzero bool
	for _, pr := range state.Ranks[0].Params {
		if len(pr.EF) == 0 {
			t.Fatal("int8 checkpoint has a parameter with no residual state")
		}
		for _, v := range pr.EF {
			if v != 0 {
				nonzero = true
				break
			}
		}
	}
	if !nonzero {
		t.Fatal("all checkpointed residuals are zero; error feedback is not accumulating")
	}

	rcfg := crashConfig(false)
	rcfg.Train.GradCodec = "int8"
	rcfg.Resume = state
	resCl, err := NewCluster(d, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer resCl.Close()
	got := map[int]epochResult{}
	if err := runEpochs(t, resCl, resCl.FirstEpoch(), epochs, got); err != nil {
		t.Fatal(err)
	}
	for e := 1; e < epochs; e++ {
		want, have := ref[e], got[e]
		for r := range want.loss {
			if want.loss[r] != have.loss[r] {
				t.Errorf("epoch %d rank %d loss %.17g != reference %.17g", e, r, have.loss[r], want.loss[r])
			}
		}
	}
	gotW := flatWeights(resCl)
	for i := range refW {
		if refW[i] != gotW[i] {
			t.Fatalf("weights diverge at %d after resume: residual state was not restored exactly", i)
		}
	}
}

// TestResumeRejectsGradCodecDrift: the gradient codec is run identity — a
// residual accumulated under int8 is meaningless to an fp32 run. Drift must
// be rejected loudly; the matching codec must resume cleanly.
func TestResumeRejectsGradCodecDrift(t *testing.T) {
	d := crashDataset(t)
	dir := t.TempDir()
	cfg := crashConfig(false)
	cfg.Train.GradCodec = "int8"
	cfg.Checkpoint = ckpt.Config{Dir: dir, EveryEpochs: 1}
	cl, err := NewCluster(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.TrainEpochAll(0); err != nil {
		cl.Close()
		t.Fatal(err)
	}
	cl.Close()
	state, _, err := ckpt.LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}

	drifted := crashConfig(false)
	drifted.Train.GradCodec = "" // the fp32 default
	drifted.Resume = state
	if _, err := NewCluster(d, drifted); err == nil {
		t.Fatal("resume with a drifted gradient codec was accepted")
	} else if !strings.Contains(err.Error(), "gradient codec") {
		t.Fatalf("drift error %q does not mention the gradient codec", err)
	}

	same := crashConfig(false)
	same.Train.GradCodec = "int8"
	same.Resume = state
	cl2, err := NewCluster(d, same)
	if err != nil {
		t.Fatalf("resume with the matching gradient codec failed: %v", err)
	}
	cl2.Close()
}
