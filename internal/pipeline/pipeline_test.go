package pipeline

import (
	"fmt"
	"testing"

	"salientpp/internal/cache"
	"salientpp/internal/dataset"
	"salientpp/internal/tensor"
)

func smallDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.SyntheticConfig{
		Name: "pipe", NumVertices: 1500, AvgDegree: 10, FeatureDim: 12,
		NumClasses: 4, TrainFrac: 0.25, ValFrac: 0.08, TestFrac: 0.12,
		FeatureNoise: 0.4, Materialize: true, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func smallConfig() ClusterConfig {
	return ClusterConfig{
		K: 2, Alpha: 0.2, GPUFraction: 1, VIPReorder: true,
		Hidden: 16, Layers: 2, Dropout: 0,
		Train: Config{
			Fanouts: []int{5, 5}, BatchSize: 64,
			PipelineDepth: 4, SamplerWorkers: 2, LR: 0.01, Seed: 5,
		},
		ModelSeed: 11,
	}
}

func TestClusterSetupInvariants(t *testing.T) {
	d := smallDataset(t)
	cl, err := NewCluster(d, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if len(cl.Ranks) != 2 {
		t.Fatalf("ranks=%d", len(cl.Ranks))
	}
	// Layout covers all vertices; parts agree with layout ownership.
	if cl.Layout.NumVertices() != d.NumVertices() {
		t.Fatal("layout size mismatch")
	}
	for v := 0; v < d.NumVertices(); v++ {
		if int(cl.Parts[v]) != cl.Layout.Owner(int32(v)) {
			t.Fatalf("vertex %d: parts %d but layout owner %d", v, cl.Parts[v], cl.Layout.Owner(int32(v)))
		}
	}
	// Initial weights identical across ranks.
	a := cl.Ranks[0].Model().Params()
	b := cl.Ranks[1].Model().Params()
	for i := range a {
		if tensor.MaxAbsDiff(a[i].W, b[i].W) != 0 {
			t.Fatal("ranks start from different weights")
		}
	}
}

func TestTrainEpochKeepsReplicasInSync(t *testing.T) {
	d := smallDataset(t)
	cl, err := NewCluster(d, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.TrainEpochAll(0); err != nil {
		t.Fatal(err)
	}
	// Synchronous data-parallel training must keep replicas bit-identical
	// (same averaged gradients, same optimizer trajectory).
	a := cl.Ranks[0].Model().Params()
	b := cl.Ranks[1].Model().Params()
	for i := range a {
		if d := tensor.MaxAbsDiff(a[i].W, b[i].W); d > 1e-6 {
			t.Fatalf("replicas diverged after one epoch: param %d differs by %v", i, d)
		}
	}
}

func TestTrainingLearns(t *testing.T) {
	d := smallDataset(t)
	cfg := smallConfig()
	cl, err := NewCluster(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var first, last float64
	for e := 0; e < 6; e++ {
		stats, err := cl.TrainEpochAll(e)
		if err != nil {
			t.Fatal(err)
		}
		var loss float64
		var n int
		for _, s := range stats {
			if s.Batches > 0 {
				loss += s.Loss
				n++
			}
		}
		loss /= float64(n)
		if e == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first*0.8 {
		t.Fatalf("distributed training loss did not decrease: %.4f -> %.4f", first, last)
	}
	acc, err := cl.EvaluateAll(dataset.SplitVal, []int{8, 8}, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.4 {
		t.Fatalf("validation accuracy %.3f below sanity threshold", acc)
	}
}

func TestCachingReducesCommunication(t *testing.T) {
	d := smallDataset(t)

	run := func(alpha float64) int64 {
		cfg := smallConfig()
		cfg.Alpha = alpha
		cl, err := NewCluster(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		stats, err := cl.TrainEpochAll(0)
		if err != nil {
			t.Fatal(err)
		}
		var remote int64
		for _, s := range stats {
			remote += int64(s.Gather.RemoteFetch)
		}
		return remote
	}

	noCache := run(0)
	cached := run(0.4)
	if noCache == 0 {
		t.Fatal("no remote fetches without cache — degenerate partition")
	}
	if cached >= noCache {
		t.Fatalf("caching did not reduce remote fetches: %d -> %d", noCache, cached)
	}
	// The paper reports multiple-x reductions for moderate alpha; at this
	// scale demand at least 25%.
	if float64(cached) > 0.75*float64(noCache) {
		t.Fatalf("caching reduction too weak: %d -> %d", noCache, cached)
	}
}

func TestPipelineDepthDoesNotChangeResults(t *testing.T) {
	d := smallDataset(t)

	weights := func(depth int) []float32 {
		cfg := smallConfig()
		cfg.Train.PipelineDepth = depth
		cl, err := NewCluster(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if _, err := cl.TrainEpochAll(0); err != nil {
			t.Fatal(err)
		}
		var out []float32
		for _, p := range cl.Ranks[0].Model().Params() {
			out = append(out, p.W.Data...)
		}
		return out
	}

	seq := weights(1)
	deep := weights(10)
	for i := range seq {
		if seq[i] != deep[i] {
			t.Fatalf("pipelining changed training results at weight %d: %v vs %v", i, seq[i], deep[i])
		}
	}
}

// TestCrossTransportDeterminism pins the transport-independence guarantee
// across the configuration grid instead of a single ad-hoc point: training
// over loopback TCP must produce bitwise-identical weights, loss, and
// remote-fetch counts to the in-process channel transport at every
// (K, PipelineDepth) combination — the collectives' ordering contract, not
// scheduling luck, is what makes results reproducible.
func TestCrossTransportDeterminism(t *testing.T) {
	d := smallDataset(t)
	cases := []struct{ k, depth int }{
		{2, 1}, // sequential batch preparation
		{2, 4}, // deep pipeline
		{3, 2}, // wider cluster, K not a power of two
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("K=%d/depth=%d", tc.k, tc.depth), func(t *testing.T) {
			type outcome struct {
				weights []float32
				loss    float64
				remote  int64
				batches int
			}
			run := func(useTCP bool) outcome {
				cfg := smallConfig()
				cfg.K = tc.k
				cfg.Train.PipelineDepth = tc.depth
				cfg.UseTCP = useTCP
				cl, err := NewCluster(d, cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer cl.Close()
				var o outcome
				stats, err := cl.TrainEpochAll(0)
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range stats {
					o.loss += s.Loss
					o.remote += int64(s.Gather.RemoteFetch)
					o.batches += s.Batches
				}
				for _, p := range cl.Ranks[0].Model().Params() {
					o.weights = append(o.weights, p.W.Data...)
				}
				return o
			}
			inproc := run(false)
			tcp := run(true)
			if inproc.batches == 0 {
				t.Fatal("no batches trained")
			}
			if tcp.batches != inproc.batches {
				t.Fatalf("batch counts differ: tcp %d, in-process %d", tcp.batches, inproc.batches)
			}
			if tcp.loss != inproc.loss {
				t.Errorf("loss differs across transports: tcp %.17g, in-process %.17g", tcp.loss, inproc.loss)
			}
			if tcp.remote != inproc.remote {
				t.Errorf("remote fetches differ across transports: tcp %d, in-process %d", tcp.remote, inproc.remote)
			}
			for i := range inproc.weights {
				if inproc.weights[i] != tcp.weights[i] {
					t.Fatalf("weights diverge across transports at %d: tcp %v, in-process %v (first difference)",
						i, tcp.weights[i], inproc.weights[i])
				}
			}
		})
	}
}

func TestNewClusterValidation(t *testing.T) {
	d := smallDataset(t)
	cfg := smallConfig()
	cfg.K = 0
	if _, err := NewCluster(d, cfg); err == nil {
		t.Fatal("expected K error")
	}
	unmat, err := dataset.Generate(dataset.SyntheticConfig{
		Name: "x", NumVertices: 100, AvgDegree: 4, FeatureDim: 4,
		NumClasses: 2, TrainFrac: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCluster(unmat, smallConfig()); err == nil {
		t.Fatal("expected materialization error")
	}
}

func TestAlternativeCachePolicy(t *testing.T) {
	d := smallDataset(t)
	cfg := smallConfig()
	cfg.CachePolicy = cache.Degree{}
	cl, err := NewCluster(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.TrainEpochAll(0); err != nil {
		t.Fatal(err)
	}
}

func TestGPUFractionStats(t *testing.T) {
	d := smallDataset(t)
	cfg := smallConfig()
	cfg.GPUFraction = 0.1
	cfg.VIPReorder = true
	cl, err := NewCluster(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	stats, err := cl.TrainEpochAll(0)
	if err != nil {
		t.Fatal(err)
	}
	// With VIP reordering, the hottest 10% of local vertices should serve
	// well over 10% of local accesses (Figure 6's premise).
	var gpu, cpu int64
	for _, s := range stats {
		gpu += int64(s.Gather.LocalGPU)
		cpu += int64(s.Gather.LocalCPU)
	}
	if gpu == 0 || cpu == 0 {
		t.Fatalf("degenerate split gpu=%d cpu=%d", gpu, cpu)
	}
	frac := float64(gpu) / float64(gpu+cpu)
	// At this tiny scale (750-vertex partitions) the concentration is much
	// weaker than the paper's full-scale result, but the hot prefix must
	// still serve well above its 10% share.
	if frac < 0.22 {
		t.Fatalf("VIP-ordered 10%% GPU prefix served only %.2f of local accesses", frac)
	}
}
