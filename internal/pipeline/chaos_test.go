package pipeline

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"salientpp/internal/ckpt"
	"salientpp/internal/dataset"
	"salientpp/internal/dist"
	"salientpp/internal/metrics"
)

// Training-path chaos matrix: kill or stall one rank at each phase of the
// training loop (sampling, feature gather, forward overlap, the
// backward-hook gradient all-reduce, and a checkpoint write), on both
// transports, and demand that the run (a) never hangs, (b) shrinks to the
// K-1 survivors, and (c) finishes bitwise identical — per-epoch loss,
// accuracy, remote-fetch counts, and final weights — to a cold K-1 restart
// from the same consensus checkpoint. The dist.Chaos schedule lives in the
// harness, not the wrapper, so the victim stays dead (or wedged) across
// the regroup exactly as a crashed machine would.

// elasticConfig is the 3-rank variant of crashConfig with checkpointing
// and stall detection armed, as TrainElastic requires.
func elasticConfig(useTCP bool, dir string) ClusterConfig {
	cfg := crashConfig(useTCP)
	cfg.K = 3
	cfg.Checkpoint = ckpt.Config{Dir: dir, EveryRounds: 2, EveryEpochs: 1, Retain: 8}
	cfg.StallTimeout = time.Second
	return cfg
}

// wrapVictim wraps only the victim's communicators in the chaos harness —
// the other ranks run clean, as in the serving chaos tests. gradOnly
// targets the gradient all-reduce path specifically (the harness counter
// then counts only reduces, so a schedule index addresses "the Nth
// all-reduce"); otherwise the feat/grad pair shares fate via WrapPair.
func wrapVictim(ch *dist.Chaos, victim int, gradOnly bool) func(int, dist.Comm, dist.Comm) (dist.Comm, dist.Comm) {
	return func(rank int, f, g dist.Comm) (dist.Comm, dist.Comm) {
		if rank != victim {
			return f, g
		}
		if gradOnly {
			return f, ch.Wrap(g)
		}
		return ch.WrapPair(f, g)
	}
}

// countVictimCalls measures how many feature-gather and gradient-reduce
// collectives the victim issues per epoch, so the matrix can schedule
// faults at phase-specific positions inside epoch 1 instead of guessing.
func countVictimCalls(t *testing.T, d *dataset.Dataset, victim int) (feat, grad int64) {
	t.Helper()
	chF := dist.NewChaos(dist.ChaosConfig{})
	chG := dist.NewChaos(dist.ChaosConfig{})
	cfg := crashConfig(false)
	cfg.K = 3
	cfg.WrapComm = func(rank int, f, g dist.Comm) (dist.Comm, dist.Comm) {
		if rank != victim {
			return f, g
		}
		return chF.Wrap(f), chG.Wrap(g)
	}
	cl, err := NewCluster(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.TrainEpochAll(0); err != nil {
		t.Fatal(err)
	}
	return chF.Calls(), chG.Calls()
}

type chaosScenario struct {
	name     string
	stall    bool // wedge the victim instead of killing it
	gradOnly bool // target the gradient all-reduce path
	// at positions the fault within epoch 1, as an offset into the
	// victim's epoch-1 collective sequence (pair counter for pair targets,
	// reduce counter for gradOnly). 0 with watch unset is invalid.
	at int64
	// watch, when set, fires the fault when the mid-epoch-1 checkpoint
	// file lands on disk — the "fault during a checkpoint write" phase.
	watch bool
}

func trainingChaosScenarios(featPE, gradPE int64) []chaosScenario {
	pairPE := featPE + gradPE
	return []chaosScenario{
		// First collective of epoch 1: the samplers are prefetching and no
		// gather of the epoch has completed.
		{name: "kill-sample", at: pairPE + 1},
		{name: "stall-sample", stall: true, at: pairPE + 1},
		// Inside the first round's gather sequence.
		{name: "kill-gather", at: pairPE + 2},
		{name: "stall-gather", stall: true, at: pairPE + 2},
		// Mid-round: forward of batch N overlaps the gather of batch N+1.
		{name: "kill-forward", at: pairPE + 6},
		{name: "stall-forward", stall: true, at: pairPE + 6},
		// First gradient all-reduce of epoch 1 (the backward hook).
		{name: "kill-backward", gradOnly: true, at: gradPE + 1},
		{name: "stall-backward", gradOnly: true, stall: true, at: gradPE + 1},
		// While the mid-epoch checkpoint of epoch 1 is being written.
		{name: "kill-ckptwrite", watch: true},
		{name: "stall-ckptwrite", stall: true, watch: true},
	}
}

func testTrainingChaosMatrix(t *testing.T, useTCP bool) {
	d := crashDataset(t)
	const victim = 1
	featPE, gradPE := countVictimCalls(t, d, victim)
	if featPE == 0 || gradPE == 0 {
		t.Fatalf("collective counting run saw %d gathers, %d reduces", featPE, gradPE)
	}
	for _, sc := range trainingChaosScenarios(featPE, gradPE) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			runTrainingChaosScenario(t, d, useTCP, victim, sc)
		})
	}
}

func TestTrainChaosMatrixInProcess(t *testing.T) { testTrainingChaosMatrix(t, false) }
func TestTrainChaosMatrixTCP(t *testing.T)       { testTrainingChaosMatrix(t, true) }

func runTrainingChaosScenario(t *testing.T, d *dataset.Dataset, useTCP bool, victim int, sc chaosScenario) {
	const epochs = 3
	dir := t.TempDir()
	ccfg := dist.ChaosConfig{Seed: 11}
	if !sc.watch {
		if sc.stall {
			ccfg.StallAtCall = sc.at
		} else {
			ccfg.DropAtCall = sc.at
		}
	}
	ch := dist.NewChaos(ccfg)
	cfg := elasticConfig(useTCP, dir)
	cfg.WrapComm = wrapVictim(ch, victim, sc.gradOnly)
	if sc.watch {
		target := filepath.Join(dir, ckpt.FileName(ckpt.Step{Epoch: 1, Round: 2}))
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			for {
				if _, err := os.Stat(target); err == nil {
					if sc.stall {
						ch.Stall()
					} else {
						ch.Kill()
					}
					return
				}
				select {
				case <-stop:
					return
				case <-time.After(time.Millisecond):
				}
			}
		}()
	}

	counters := metrics.NewCounters()
	cl, rep, err := TrainElastic(d, cfg, epochs, ElasticConfig{
		MinRanks: 2, ProbeTimeout: 250 * time.Millisecond, Counters: counters,
	})
	if err != nil {
		t.Fatalf("elastic run failed: %v", err)
	}
	defer cl.Close()
	if rep.StallsDetected != 1 || rep.Regroups != 1 {
		t.Fatalf("stalls=%d regroups=%d, want 1/1", rep.StallsDetected, rep.Regroups)
	}
	if rep.FinalK != 2 || len(rep.Survivors) != 2 {
		t.Fatalf("finalK=%d survivors=%v, want 2 survivors", rep.FinalK, rep.Survivors)
	}
	for _, s := range rep.Survivors {
		if s == victim {
			t.Fatalf("victim %d survived: %v", victim, rep.Survivors)
		}
	}
	if got := counters.Get(metrics.CounterRegroups); got != 1 {
		t.Fatalf("regroup counter %d, want 1", got)
	}
	for e := 0; e < epochs; e++ {
		if len(rep.Epochs[e]) == 0 {
			t.Fatalf("epoch %d missing from the elastic run", e)
		}
	}
	liveW := flatWeights(cl)

	// Cold restart: consume the same shrunk consensus state the live run
	// resumed from, on a clean, unwrapped K-1 cluster.
	ev := rep.RegroupEvents[0]
	ccold := crashConfig(useTCP)
	ccold.K = 2
	ccold.Resume = ev.State
	coldCl, err := NewCluster(d, ccold)
	if err != nil {
		t.Fatal(err)
	}
	defer coldCl.Close()
	cold := map[int]epochResult{}
	if err := runEpochs(t, coldCl, coldCl.FirstEpoch(), epochs, cold); err != nil {
		t.Fatal(err)
	}

	// Bitwise equality from the resume epoch on.
	for e := ev.State.Step.Epoch; e < epochs; e++ {
		want, have := cold[e], rep.Epochs[e]
		if len(have) != len(want.loss) {
			t.Fatalf("epoch %d: live has %d ranks, cold %d", e, len(have), len(want.loss))
		}
		var remote int64
		for r, s := range have {
			if s.Loss != want.loss[r] || s.Accuracy != want.acc[r] {
				t.Errorf("epoch %d rank %d: live loss/acc %.17g/%.17g != cold %.17g/%.17g",
					e, r, s.Loss, s.Accuracy, want.loss[r], want.acc[r])
			}
			remote += int64(s.Gather.RemoteFetch)
		}
		if remote != want.remote {
			t.Errorf("epoch %d: live remote fetches %d != cold %d", e, remote, want.remote)
		}
	}
	coldW := flatWeights(coldCl)
	if len(liveW) != len(coldW) {
		t.Fatalf("weight count %d != cold %d", len(liveW), len(coldW))
	}
	for i := range coldW {
		if liveW[i] != coldW[i] {
			t.Fatalf("final weights diverge from the cold restart at %d: %v != %v", i, liveW[i], coldW[i])
		}
	}
}

// TestElasticAbortedShrink pins the too-few-survivors path: a K=2 run
// losing a rank cannot shrink below MinRanks, so TrainElastic returns
// ErrShrinkAborted — with every goroutine unwound, not a hang.
func TestElasticAbortedShrink(t *testing.T) {
	baseline := runtime.NumGoroutine()
	d := crashDataset(t)
	dir := t.TempDir()
	ch := dist.NewChaos(dist.ChaosConfig{DropAtCall: 8})
	cfg := crashConfig(false)
	cfg.Checkpoint = ckpt.Config{Dir: dir, EveryRounds: 2, EveryEpochs: 1, Retain: 4}
	cfg.StallTimeout = time.Second
	cfg.WrapComm = wrapVictim(ch, 1, false)
	_, _, err := TrainElastic(d, cfg, 3, ElasticConfig{ProbeTimeout: 250 * time.Millisecond})
	if !errors.Is(err, ErrShrinkAborted) {
		t.Fatalf("err = %v, want ErrShrinkAborted", err)
	}
	waitGoroutines(t, baseline)
}

// TestElasticRegroupLeakFree is the leak regression for the shrink path:
// after a mid-epoch kill, regroup, and completed run, the rebuilt cluster
// holds no live pooled tensors and every pipeline/reducer goroutine from
// both the failed and the continued run has unwound.
func TestElasticRegroupLeakFree(t *testing.T) {
	baseline := runtime.NumGoroutine()
	d := crashDataset(t)
	dir := t.TempDir()
	featPE, gradPE := countVictimCalls(t, d, 1)
	ch := dist.NewChaos(dist.ChaosConfig{DropAtCall: featPE + gradPE + 3})
	cfg := elasticConfig(false, dir)
	cfg.WrapComm = wrapVictim(ch, 1, false)
	cl, rep, err := TrainElastic(d, cfg, 3, ElasticConfig{ProbeTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regroups != 1 {
		t.Fatalf("regroups = %d, want 1", rep.Regroups)
	}
	for r, rk := range cl.Ranks {
		if live := rk.Store().Live(); live != 0 {
			t.Errorf("rank %d holds %d live pooled tensors after the regrouped run", r, live)
		}
	}
	cl.Close()
	waitGoroutines(t, baseline)
}

func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestElasticResumeRejectsTopologyDrift pins that checkpoints written by a
// shrunk run record the new member count: resuming one onto the original
// K-rank configuration must be rejected, not silently re-laid out.
func TestElasticResumeRejectsTopologyDrift(t *testing.T) {
	d := crashDataset(t)
	dir := t.TempDir()
	featPE, gradPE := countVictimCalls(t, d, 1)
	ch := dist.NewChaos(dist.ChaosConfig{DropAtCall: featPE + gradPE + 2})
	cfg := elasticConfig(false, dir)
	cfg.WrapComm = wrapVictim(ch, 1, false)
	cl, rep, err := TrainElastic(d, cfg, 3, ElasticConfig{ProbeTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if rep.FinalK != 2 {
		t.Fatalf("finalK = %d, want 2", rep.FinalK)
	}
	st, path, err := ckpt.LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Topo.K != 2 {
		t.Fatalf("latest checkpoint %s records K=%d, want the shrunk K=2", path, st.Topo.K)
	}
	stale := elasticConfig(false, dir) // K=3: the pre-failure layout
	stale.Resume = st
	if _, err := NewCluster(d, stale); err == nil {
		t.Fatal("shrunk checkpoint resumed onto the stale 3-rank layout")
	}
}

// TestStallTimeoutAddsNoAllocations guards the healthy-path cost of stall
// detection: arming StallTimeout on every collective must add no
// steady-state allocations to the warm batch loop (the local transport
// re-arms a reused timer).
func TestStallTimeoutAddsNoAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates shadow state on the pipeline's goroutine handoffs; the non-race leg enforces the bound")
	}
	d := crashDataset(t)
	build := func(armed bool) *Cluster {
		cfg := crashConfig(false)
		cfg.K = 1
		cfg.Dropout = 0
		if armed {
			cfg.StallTimeout = time.Hour // armed, never fires
		}
		cl, err := NewCluster(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	measure := func(cl *Cluster) float64 {
		epoch := 0
		train := func() {
			if _, err := cl.TrainEpochAll(epoch); err != nil {
				t.Fatal(err)
			}
			epoch++
		}
		for i := 0; i < 3; i++ {
			train()
		}
		return testing.AllocsPerRun(5, train)
	}
	plain := build(false)
	defer plain.Close()
	armed := build(true)
	defer armed.Close()
	base := measure(plain)
	withTimeout := measure(armed)
	if withTimeout > base+2 {
		t.Fatalf("armed stall timeout added allocations to the warm loop: %.1f vs %.1f per epoch", withTimeout, base)
	}
}
