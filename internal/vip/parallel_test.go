package vip

import (
	"fmt"
	"testing"

	"salientpp/internal/graph"
	"salientpp/internal/rng"
)

// testGraph builds a skewed synthetic graph with a training-like seed
// distribution, fixed seed throughout for run-to-run reproducibility.
func testGraph(t testing.TB, n int, seed uint64) (*graph.CSR, []float64) {
	t.Helper()
	g, err := graph.RMAT(graph.DefaultRMAT(n, int64(n)*8, seed))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed + 1)
	train := r.SampleK(nil, n/10, n)
	p0 := UniformSeeds(n, train, 256)
	return g, p0
}

// TestParallelMatchesSerial asserts the tentpole determinism guarantee:
// the sharded parallel propagation is bitwise-identical to the serial
// reference for every worker count, with and without seed folding and hop
// retention.
func TestParallelMatchesSerial(t *testing.T) {
	g, p0 := testGraph(t, 5000, 3)
	for _, includeSeeds := range []bool{false, true} {
		serial, err := Probabilities(g, p0, Config{Fanouts: []int{15, 10, 5}, BatchSize: 256, IncludeSeeds: includeSeeds, Workers: 1}, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 3, 4, 8, 64} {
			par, err := Probabilities(g, p0, Config{Fanouts: []int{15, 10, 5}, BatchSize: 256, IncludeSeeds: includeSeeds, Workers: workers}, true)
			if err != nil {
				t.Fatal(err)
			}
			for u := range serial.P {
				if serial.P[u] != par.P[u] {
					t.Fatalf("seeds=%v workers=%d: P[%d] differs: serial %v parallel %v",
						includeSeeds, workers, u, serial.P[u], par.P[u])
				}
			}
			for h := range serial.Hops {
				for u := range serial.Hops[h] {
					if serial.Hops[h][u] != par.Hops[h][u] {
						t.Fatalf("seeds=%v workers=%d hop %d: vertex %d differs", includeSeeds, workers, h, u)
					}
				}
			}
		}
	}
}

// TestEdgeShardsCoverage checks that shards tile [0, n) exactly for skewed
// degree distributions and degenerate worker counts.
func TestEdgeShardsCoverage(t *testing.T) {
	g, _ := testGraph(t, 1000, 5)
	for _, workers := range []int{1, 2, 3, 7, 16, 999, 5000} {
		shards := edgeShards(g, workers)
		if len(shards) > workers {
			t.Fatalf("workers=%d produced %d shards", workers, len(shards))
		}
		next := 0
		for _, sh := range shards {
			if sh[0] != next || sh[1] <= sh[0] {
				t.Fatalf("workers=%d: shard %v breaks tiling at %d", workers, sh, next)
			}
			next = sh[1]
		}
		if next != g.NumVertices() {
			t.Fatalf("workers=%d: shards end at %d of %d", workers, next, g.NumVertices())
		}
	}
}

// BenchmarkVIP times the propagation at increasing worker counts on a
// papers-analog RMAT graph; the workers=1 case is the serial baseline the
// speedup acceptance criterion compares against.
func BenchmarkVIP(b *testing.B) {
	g, p0 := testGraph(b, 50000, 7)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := Config{Fanouts: []int{15, 10, 5}, BatchSize: 256, Workers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Probabilities(g, p0, cfg, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
