package vip

import (
	"math"
	"testing"

	"salientpp/internal/graph"
	"salientpp/internal/rng"
)

func TestUniformSeeds(t *testing.T) {
	p0 := UniformSeeds(10, []int32{1, 3, 5, 7}, 2)
	if p0[1] != 0.5 || p0[3] != 0.5 {
		t.Fatalf("train seed probability wrong: %v", p0)
	}
	if p0[0] != 0 || p0[2] != 0 {
		t.Fatalf("non-train vertices must have p0=0: %v", p0)
	}
	// Batch larger than training set caps at 1.
	p0 = UniformSeeds(4, []int32{0, 1}, 10)
	if p0[0] != 1 {
		t.Fatalf("expected cap at 1, got %v", p0[0])
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Fatal("empty fanouts must be rejected")
	}
	if err := (Config{Fanouts: []int{5, 0}}).Validate(); err == nil {
		t.Fatal("zero fanout must be rejected")
	}
	if err := (Config{Fanouts: []int{15, 10, 5}}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProbabilitiesRejectsBadInput(t *testing.T) {
	g, _ := graph.Ring(5)
	if _, err := Probabilities(g, []float64{0.5}, Config{Fanouts: []int{1}}, false); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := Probabilities(g, []float64{0, 0, 0, 0, 2}, Config{Fanouts: []int{1}}, false); err == nil {
		t.Fatal("expected probability range error")
	}
}

// Star graph, seed on the hub with probability q, one hop, fanout f:
// each leaf u has a single neighbor (the hub, degree n-1), so
// p[1](u) = t·q with t = f/(n-1).
func TestStarOneHopExact(t *testing.T) {
	const n = 11 // hub + 10 leaves
	g, err := graph.Star(n)
	if err != nil {
		t.Fatal(err)
	}
	p0 := make([]float64, n)
	p0[0] = 0.8
	res, err := Probabilities(g, p0, Config{Fanouts: []int{4}}, true)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.8 * 4.0 / 10.0
	for u := 1; u < n; u++ {
		if math.Abs(res.P[u]-want) > 1e-12 {
			t.Fatalf("leaf %d: p=%v want %v", u, res.P[u], want)
		}
	}
	// Hub itself is never sampled at hop 1: every leaf has degree 1 and can
	// only sample the hub... wait, leaves sample the hub with t=1, but
	// leaves have p0=0, so the hub's hop-1 probability is 0.
	if res.P[0] != 0 {
		t.Fatalf("hub p=%v want 0 (seeds not included)", res.P[0])
	}
	// With IncludeSeeds the hub keeps its seed probability.
	res2, err := Probabilities(g, p0, Config{Fanouts: []int{4}, IncludeSeeds: true}, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.P[0]-0.8) > 1e-12 {
		t.Fatalf("hub with seeds p=%v want 0.8", res2.P[0])
	}
}

// Ring: every vertex has degree 2; with fanout >= 2 sampling is exhaustive
// and a single certain seed reaches its h-hop neighbors with probability 1.
func TestRingDeterministicExpansion(t *testing.T) {
	g, err := graph.Ring(12)
	if err != nil {
		t.Fatal(err)
	}
	p0 := make([]float64, 12)
	p0[0] = 1
	res, err := Probabilities(g, p0, Config{Fanouts: []int{2, 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	// Distance-1 and distance-2 vertices certain; distance >2 zero.
	wantOne := []int32{1, 2, 10, 11}
	for _, u := range wantOne {
		if math.Abs(res.P[u]-1) > 1e-9 {
			t.Fatalf("vertex %d: p=%v want 1", u, res.P[u])
		}
	}
	if res.P[5] != 0 || res.P[6] != 0 {
		t.Fatalf("far vertices should be unreachable: %v %v", res.P[5], res.P[6])
	}
	// Vertex 0 itself is re-sampled at hop 2 via its neighbors (they sample
	// both their neighbors deterministically), so p(0) = 1 even without
	// seeds included.
	if math.Abs(res.P[0]-1) > 1e-9 {
		t.Fatalf("seed resampled at hop 2: p=%v want 1", res.P[0])
	}
}

func TestProbabilityBounds(t *testing.T) {
	g, err := graph.RMAT(graph.DefaultRMAT(500, 3000, 9))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	p0 := make([]float64, 500)
	for i := 0; i < 50; i++ {
		p0[r.Intn(500)] = r.Float64()
	}
	res, err := Probabilities(g, p0, Config{Fanouts: []int{15, 10, 5}}, false)
	if err != nil {
		t.Fatal(err)
	}
	for u, p := range res.P {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("p[%d] = %v out of [0,1]", u, p)
		}
	}
}

func TestMonotoneInFanout(t *testing.T) {
	g, err := graph.RMAT(graph.DefaultRMAT(400, 2400, 10))
	if err != nil {
		t.Fatal(err)
	}
	train := rng.New(1).SampleK(nil, 40, 400)
	p0 := UniformSeeds(400, train, 8)
	small, err := Probabilities(g, p0, Config{Fanouts: []int{3, 3}}, false)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Probabilities(g, p0, Config{Fanouts: []int{10, 10}}, false)
	if err != nil {
		t.Fatal(err)
	}
	for u := range small.P {
		if small.P[u] > big.P[u]+1e-12 {
			t.Fatalf("vertex %d: VIP decreased with larger fanout (%v -> %v)", u, small.P[u], big.P[u])
		}
	}
}

func TestFullExpansionSpecialCase(t *testing.T) {
	g, err := graph.RMAT(graph.DefaultRMAT(300, 1500, 12))
	if err != nil {
		t.Fatal(err)
	}
	train := rng.New(2).SampleK(nil, 30, 300)
	p0 := UniformSeeds(300, train, 8)
	// Fanout above the max degree makes the general model identical to the
	// deterministic full-expansion recurrence.
	f := g.MaxDegree() + 1
	gen, err := Probabilities(g, p0, Config{Fanouts: []int{f, f}}, false)
	if err != nil {
		t.Fatal(err)
	}
	full := FullExpansion(g, p0, 2)
	for u := range gen.P {
		if math.Abs(gen.P[u]-full[u]) > 1e-9 {
			t.Fatalf("vertex %d: general %v != full expansion %v", u, gen.P[u], full[u])
		}
	}
}

func TestRandomWalkSpecialCase(t *testing.T) {
	// With fanout 1 and a single low-probability seed the nonlinear model
	// linearizes to the random-walk propagation.
	g, err := graph.Uniform(200, 800, 13)
	if err != nil {
		t.Fatal(err)
	}
	p0 := make([]float64, 200)
	p0[7] = 0.01
	gen, err := Probabilities(g, p0, Config{Fanouts: []int{1, 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	rw := RandomWalk(g, p0, 2)
	for u := range gen.P {
		if math.Abs(gen.P[u]-rw[u]) > 1e-4 {
			t.Fatalf("vertex %d: general %v vs random walk %v", u, gen.P[u], rw[u])
		}
	}
}

// Monte Carlo validation: simulate the exact random process of §3.1 and
// compare empirical inclusion frequencies to the analytic model.
func TestMonteCarloAgreement(t *testing.T) {
	g, err := graph.RMAT(graph.DefaultRMAT(300, 1800, 21))
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	train := rng.New(5).SampleK(nil, 40, n)
	const B = 8
	fanouts := []int{3, 2}
	p0 := UniformSeeds(n, train, B)
	res, err := Probabilities(g, p0, Config{Fanouts: fanouts}, false)
	if err != nil {
		t.Fatal(err)
	}

	const trials = 4000
	counts := make([]int, n)
	r := rng.New(99)
	inFrontier := make([]bool, n)
	accessed := make([]bool, n)
	var frontier, next, touched []int32
	nbrBuf := make([]int32, 0, 8)
	for trial := 0; trial < trials; trial++ {
		touched = touched[:0]
		frontier = frontier[:0]
		for _, idx := range r.SampleK(nil, B, len(train)) {
			frontier = append(frontier, train[idx])
		}
		for _, f := range fanouts {
			next = next[:0]
			for _, v := range frontier {
				nbrs := g.Neighbors(v)
				d := len(nbrs)
				if d == 0 {
					continue
				}
				k := f
				if k > d {
					k = d
				}
				for _, i := range r.SampleK(nbrBuf, k, d) {
					u := nbrs[i]
					if !inFrontier[u] {
						inFrontier[u] = true
						next = append(next, u)
					}
					if !accessed[u] {
						accessed[u] = true
						touched = append(touched, u)
						counts[u]++
					}
				}
			}
			// Reset frontier marks and swap.
			for _, u := range next {
				inFrontier[u] = false
			}
			frontier = append(frontier[:0], next...)
		}
		for _, u := range touched {
			accessed[u] = false
		}
	}

	var sumAbs, maxAbs float64
	for u := 0; u < n; u++ {
		emp := float64(counts[u]) / trials
		diff := math.Abs(emp - res.P[u])
		sumAbs += diff
		if diff > maxAbs {
			maxAbs = diff
		}
	}
	mean := sumAbs / float64(n)
	if mean > 0.02 {
		t.Fatalf("mean |empirical - model| = %.4f too large", mean)
	}
	if maxAbs > 0.12 {
		t.Fatalf("max |empirical - model| = %.4f too large", maxAbs)
	}
}

func TestForPartitions(t *testing.T) {
	// Three disconnected 50-cycles; partition = component. A partition's
	// expansion can never leave its component, so its VIP must be positive
	// near its own training vertices and exactly zero on other components.
	const comp, k = 50, 3
	var edges []graph.Edge
	for c := 0; c < k; c++ {
		base := int32(c * comp)
		for i := int32(0); i < comp; i++ {
			edges = append(edges, graph.Edge{Src: base + i, Dst: base + (i+1)%comp})
		}
	}
	g, err := graph.FromEdges(k*comp, edges, graph.BuildOptions{Undirected: true, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	parts := make([]int32, n)
	var train []int32
	for v := 0; v < n; v++ {
		parts[v] = int32(v / comp)
		if v%10 == 0 {
			train = append(train, int32(v))
		}
	}
	cfg := Config{Fanouts: []int{2, 2}, BatchSize: 2}
	vips, err := ForPartitions(g, parts, k, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(vips) != k {
		t.Fatalf("want %d VIP vectors, got %d", k, len(vips))
	}
	for p := 0; p < k; p++ {
		var inside float64
		for u := 0; u < n; u++ {
			if parts[u] == int32(p) {
				inside += vips[p][u]
			} else if vips[p][u] != 0 {
				t.Fatalf("partition %d VIP leaked to foreign vertex %d: %v", p, u, vips[p][u])
			}
		}
		if inside == 0 {
			t.Fatalf("partition %d VIP vanished on its own component", p)
		}
	}
}

func TestForPartitionsRejectsBadPartition(t *testing.T) {
	g, _ := graph.Ring(10)
	parts := make([]int32, 10)
	parts[3] = 7
	if _, err := ForPartitions(g, parts, 2, []int32{3}, Config{Fanouts: []int{2}, BatchSize: 2}); err == nil {
		t.Fatal("expected partition range error")
	}
}

func TestKeepHops(t *testing.T) {
	g, _ := graph.Ring(8)
	p0 := make([]float64, 8)
	p0[0] = 1
	res, err := Probabilities(g, p0, Config{Fanouts: []int{2, 2, 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hops) != 3 {
		t.Fatalf("want 3 hop vectors, got %d", len(res.Hops))
	}
	// Hop 1 from vertex 0 on a ring reaches exactly 1 and 7.
	if res.Hops[0][1] != 1 || res.Hops[0][7] != 1 || res.Hops[0][2] != 0 {
		t.Fatalf("hop-1 vector wrong: %v", res.Hops[0])
	}
}
