// Package vip implements the paper's central contribution: vertex inclusion
// probability (VIP) analysis for GNN neighborhood expansion with node-wise
// sampling (Proposition 1).
//
// Given a distribution p0 over minibatch seeds, the model propagates
// hop-wise inclusion probabilities through the graph:
//
//	p[h](u) = 1 − Π_{v∈N1(u)} (1 − t_h(u,v)·p[h−1](v))
//	p(u)    = 1 − Π_{h=1..L} (1 − p[h](u))
//
// where, for uniform node-wise sampling without replacement with fanout f_h
// (GraphSAGE), the transition probability is t_h(u,v) = min(1, f_h/d(v)).
//
// The computation is O(L·(M+N)): each hop takes one pass over vertices to
// form s_v = t_h(v)·p[h−1](v) and one pass over edges to accumulate
// Σ log1p(−s_v). Log-space accumulation avoids the catastrophic
// cancellation that a naive product would suffer for the very small
// per-neighbor probabilities typical of low-degree vertices far from the
// training set.
//
// Both passes are embarrassingly parallel in the pull direction — every
// output element depends only on the previous hop's vector — so the
// propagation shards the vertex range into edge-balanced contiguous
// intervals processed by a worker pool (Config.Workers). Each vertex's
// neighbor accumulation keeps the exact serial order, so the output is
// bitwise-identical for every worker count, not merely for a fixed one.
package vip

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"salientpp/internal/graph"
)

// Config parametrizes the sampling process being analyzed.
type Config struct {
	// Fanouts[h-1] is the per-vertex neighbor budget at hop h (sampling
	// order, i.e., the first element is the hop taken directly from the
	// minibatch). A 3-layer GraphSAGE with PyG-style fanouts (15,10,5)
	// passes exactly that slice.
	Fanouts []int
	// BatchSize is the minibatch size B used for the uniform seed
	// distribution helpers. It does not affect Probabilities when a custom
	// p0 is supplied.
	BatchSize int
	// IncludeSeeds folds the hop-0 probability into the final VIP value:
	// p(u) = 1 − (1−p[0](u))·Π_h(1−p[h](u)). Proposition 1 as stated
	// covers hops 1..L only; including seeds matters when ranking *local*
	// vertices for GPU residency, because minibatch vertices need their own
	// features too. It has no effect on remote-vertex rankings (remote
	// vertices have p[0] = 0 for the partition in question).
	IncludeSeeds bool
	// Workers bounds the propagation parallelism: the vertex range is cut
	// into edge-balanced shards processed concurrently. 0 uses GOMAXPROCS;
	// 1 runs the serial reference path. Results are bitwise-identical for
	// every setting.
	Workers int
}

// Validate checks the configuration against a graph.
func (c Config) Validate() error {
	if len(c.Fanouts) == 0 {
		return fmt.Errorf("vip: empty fanouts")
	}
	for i, f := range c.Fanouts {
		if f <= 0 {
			return fmt.Errorf("vip: fanout[%d] = %d must be positive", i, f)
		}
	}
	return nil
}

// UniformSeeds returns the hop-0 distribution for uniform minibatch
// sampling without replacement: p0(u) = B/|T| for u in the training set T
// (capped at 1), 0 elsewhere.
func UniformSeeds(n int, trainIDs []int32, batchSize int) []float64 {
	p0 := make([]float64, n)
	if len(trainIDs) == 0 {
		return p0
	}
	p := float64(batchSize) / float64(len(trainIDs))
	if p > 1 {
		p = 1
	}
	for _, v := range trainIDs {
		p0[v] = p
	}
	return p0
}

// Result carries the VIP values and, optionally, the per-hop vectors.
type Result struct {
	// P[u] is the probability that u appears in the sampled L-hop expanded
	// neighborhood of a minibatch.
	P []float64
	// Hops[h-1][u] is p[h](u); populated only when KeepHops was requested.
	Hops [][]float64
}

// Probabilities computes VIP values for an arbitrary seed distribution p0.
// keepHops retains the intermediate hop vectors (used by analysis tools and
// tests; costs L extra vectors).
func Probabilities(g *graph.CSR, p0 []float64, cfg Config, keepHops bool) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	if len(p0) != n {
		return nil, fmt.Errorf("vip: p0 has %d entries for %d vertices", len(p0), n)
	}
	for v, p := range p0 {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("vip: p0[%d] = %v is not a probability", v, p)
		}
	}

	// logKeep[u] accumulates Σ_h log(1 − p[h](u)); final P = 1 − exp(logKeep).
	logKeep := make([]float64, n)
	if cfg.IncludeSeeds {
		for v, p := range p0 {
			logKeep[v] = log1mp(p)
		}
	}

	prev := make([]float64, n)
	copy(prev, p0)
	cur := make([]float64, n)
	sv := make([]float64, n) // s_v = t_h(v)·p[h−1](v), then log1p(−s_v)

	shards := edgeShards(g, cfg.Workers)
	res := &Result{}
	for _, f := range cfg.Fanouts {
		// Pass 1 (vertices): per-sampler contribution in log space.
		// Vertices outside the current frontier (prev == 0) cost one read.
		forShards(shards, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				if prev[v] == 0 {
					sv[v] = 0
					continue
				}
				d := g.Degree(int32(v))
				t := 1.0
				if d > f {
					t = float64(f) / float64(d)
				}
				sv[v] = log1mp(t * prev[v])
			}
		})
		// Pass 2 (edges): p[h](u) = 1 − exp(Σ_{v∈N(u)} log(1 − s_v)).
		// Each destination accumulates its neighbors in adjacency order,
		// exactly as the serial pass does.
		forShards(shards, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				var acc float64
				for _, v := range g.Neighbors(int32(u)) {
					acc += sv[v]
				}
				p := -math.Expm1(acc) // 1 − exp(acc)
				cur[u] = p
				logKeep[u] += log1mp(p)
			}
		})
		if keepHops {
			hop := make([]float64, n)
			copy(hop, cur)
			res.Hops = append(res.Hops, hop)
		}
		prev, cur = cur, prev
	}

	out := make([]float64, n)
	forShards(shards, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			out[u] = -math.Expm1(logKeep[u])
			// Clamp tiny negative values from floating-point noise.
			if out[u] < 0 {
				out[u] = 0
			} else if out[u] > 1 {
				out[u] = 1
			}
		}
	})
	res.P = out
	return res, nil
}

// edgeShards cuts [0, n) into at most workers contiguous vertex ranges
// whose stored-edge counts are balanced, so pass-2 work (proportional to
// degree sums, not vertex counts) divides evenly even on the skewed
// power-law graphs the paper targets. Workers <= 0 means GOMAXPROCS.
func edgeShards(g *graph.CSR, workers int) [][2]int {
	n := g.NumVertices()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 0 {
		return [][2]int{{0, n}}
	}
	m := g.NumEdges()
	shards := make([][2]int, 0, workers)
	lo := 0
	for s := 1; s <= workers && lo < n; s++ {
		var hi int
		if s == workers {
			hi = n
		} else {
			// First vertex whose prefix edge count reaches s/workers of
			// the total; +1 keeps shards non-empty on edgeless prefixes.
			target := m * int64(s) / int64(workers)
			hi = sort.Search(n, func(v int) bool { return g.Offsets[v+1] >= target })
			if hi <= lo {
				hi = lo + 1
			}
			if hi > n {
				hi = n
			}
		}
		shards = append(shards, [2]int{lo, hi})
		lo = hi
	}
	return shards
}

// forShards runs fn over every shard, concurrently when there is more than
// one. Shards never overlap, so workers write disjoint ranges of the
// shared output vectors and need no synchronization beyond the barrier.
func forShards(shards [][2]int, fn func(lo, hi int)) {
	if len(shards) == 1 {
		fn(shards[0][0], shards[0][1])
		return
	}
	var wg sync.WaitGroup
	for _, sh := range shards {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(sh[0], sh[1])
	}
	wg.Wait()
}

// log1mp returns log(1−p) handling p == 1 exactly.
func log1mp(p float64) float64 {
	if p >= 1 {
		return math.Inf(-1)
	}
	return math.Log1p(-p)
}

// ForPartitions computes partition-wise VIP vectors: element [k][u] is the
// probability that machine k's minibatch expansion includes vertex u.
// parts[v] gives the partition of v; trainIDs are the global training
// vertices (each contributes to its own partition's seed distribution with
// p0 = B/|T_k|, matching the paper's partition-wise analysis).
func ForPartitions(g *graph.CSR, parts []int32, k int, trainIDs []int32, cfg Config) ([][]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	if len(parts) != n {
		return nil, fmt.Errorf("vip: parts has %d entries for %d vertices", len(parts), n)
	}
	trainPer := make([][]int32, k)
	for _, v := range trainIDs {
		p := parts[v]
		if p < 0 || int(p) >= k {
			return nil, fmt.Errorf("vip: training vertex %d has partition %d outside [0,%d)", v, p, k)
		}
		trainPer[p] = append(trainPer[p], v)
	}
	out := make([][]float64, k)
	for p := 0; p < k; p++ {
		p0 := UniformSeeds(n, trainPer[p], cfg.BatchSize)
		res, err := Probabilities(g, p0, cfg, false)
		if err != nil {
			return nil, err
		}
		out[p] = res.P
	}
	return out, nil
}

// RandomWalk computes the linear special case of the VIP model (§3.1): with
// batch size 1 and all fanouts 1 the expansion is a random walk and the
// hop-wise model becomes p[h] = Pᵀ p[h−1] with P(v→u) = 1/d(v). Returns the
// expected number of visits truncated to probabilities (values capped at 1
// per hop for comparability with the nonlinear model).
func RandomWalk(g *graph.CSR, p0 []float64, hops int) []float64 {
	n := g.NumVertices()
	prev := make([]float64, n)
	copy(prev, p0)
	cur := make([]float64, n)
	keep := make([]float64, n)
	for u := range keep {
		keep[u] = 1
	}
	for h := 0; h < hops; h++ {
		for u := 0; u < n; u++ {
			var acc float64
			for _, v := range g.Neighbors(int32(u)) {
				d := g.Degree(v)
				if d > 0 {
					acc += prev[v] / float64(d)
				}
			}
			if acc > 1 {
				acc = 1
			}
			cur[u] = acc
			keep[u] *= 1 - acc
		}
		prev, cur = cur, prev
	}
	out := make([]float64, n)
	for u := range out {
		out[u] = 1 - keep[u]
	}
	return out
}

// FullExpansion computes the other end of the continuum (§3.1): fanouts at
// least the maximum degree make sampling deterministic, t_h ≡ 1, and
//
//	p[h](u) = 1 − Π_{v∈N(u)} (1 − p[h−1](v)).
func FullExpansion(g *graph.CSR, p0 []float64, hops int) []float64 {
	n := g.NumVertices()
	prev := make([]float64, n)
	copy(prev, p0)
	cur := make([]float64, n)
	logKeep := make([]float64, n)
	for h := 0; h < hops; h++ {
		for u := 0; u < n; u++ {
			var acc float64
			for _, v := range g.Neighbors(int32(u)) {
				acc += log1mp(prev[v])
			}
			p := -math.Expm1(acc)
			cur[u] = p
			logKeep[u] += log1mp(p)
		}
		prev, cur = cur, prev
	}
	out := make([]float64, n)
	for u := range out {
		out[u] = -math.Expm1(logKeep[u])
	}
	return out
}
