package nn

import (
	"fmt"

	"salientpp/internal/rng"
	"salientpp/internal/sample"
	"salientpp/internal/tensor"
)

// Model is an L-layer GraphSAGE classifier: SAGE→ReLU(→dropout) repeated,
// with the final SAGE layer emitting class logits. The layer count must
// equal the MFG depth (one block per layer).
type Model struct {
	Layers  []*SAGEConv
	Dropout float64

	// forward caches (valid between Forward and Backward)
	caches  []*sageCache
	acts    []*tensor.Matrix // post-ReLU activations per hidden layer
	masks   []*tensor.Matrix // dropout masks per hidden layer
	dropRNG *rng.RNG
}

// NewModel builds a GraphSAGE with the given dimensions: inDim → hidden
// (layers-1 times) → classes, He-initialized from seed.
func NewModel(inDim, hidden, classes, layers int, dropout float64, seed uint64) (*Model, error) {
	if layers < 1 {
		return nil, fmt.Errorf("nn: need at least one layer")
	}
	if inDim <= 0 || hidden <= 0 || classes <= 1 {
		return nil, fmt.Errorf("nn: invalid dims in=%d hidden=%d classes=%d", inDim, hidden, classes)
	}
	r := rng.New(seed)
	m := &Model{Dropout: dropout, dropRNG: r.Split(999)}
	for l := 0; l < layers; l++ {
		in := hidden
		if l == 0 {
			in = inDim
		}
		out := hidden
		if l == layers-1 {
			out = classes
		}
		layer := NewSAGEConv(in, out)
		layer.WSelf.W.HeInit(in, r.Split(uint64(3*l)))
		layer.WNeigh.W.HeInit(in, r.Split(uint64(3*l+1)))
		// Bias stays zero.
		m.Layers = append(m.Layers, layer)
	}
	return m, nil
}

// Forward runs the model over one minibatch. x holds features for
// mfg.InputIDs() in order; training enables dropout. Returns seed logits.
func (m *Model) Forward(mfg *sample.MFG, x *tensor.Matrix, training bool) (*tensor.Matrix, error) {
	if len(mfg.Blocks) != len(m.Layers) {
		return nil, fmt.Errorf("nn: MFG has %d blocks for %d layers", len(mfg.Blocks), len(m.Layers))
	}
	if x.Rows != len(mfg.InputIDs()) {
		return nil, fmt.Errorf("nn: feature rows %d != MFG inputs %d", x.Rows, len(mfg.InputIDs()))
	}
	m.caches = m.caches[:0]
	m.acts = m.acts[:0]
	m.masks = m.masks[:0]

	h := x
	for li, layer := range m.Layers {
		out, cache := layer.Forward(mfg.Blocks[li], h)
		m.caches = append(m.caches, cache)
		if li < len(m.Layers)-1 {
			out.ReLU()
			act := out.Clone() // keep pre-dropout activation for ReLU backward
			m.acts = append(m.acts, act)
			mask := tensor.New(out.Rows, out.Cols)
			if training && m.Dropout > 0 {
				out.Dropout(m.Dropout, mask, m.dropRNG)
			} else {
				for i := range mask.Data {
					mask.Data[i] = 1
				}
			}
			m.masks = append(m.masks, mask)
		}
		h = out
	}
	return h, nil
}

// Backward propagates dLogits through the cached forward pass,
// accumulating parameter gradients. Forward must have been called first
// with training semantics matching this call.
func (m *Model) Backward(dLogits *tensor.Matrix) {
	grad := dLogits
	for li := len(m.Layers) - 1; li >= 0; li-- {
		grad = m.Layers[li].Backward(m.caches[li], grad)
		if li > 0 {
			// Undo dropout and ReLU of the previous hidden activation.
			grad.Mul(m.masks[li-1])
			tensor.ReLUBackward(grad, m.acts[li-1])
		}
	}
}

// Params returns all learnable parameters in a stable order.
func (m *Model) Params() []*Param {
	var out []*Param
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrad clears all gradients.
func (m *Model) ZeroGrad() {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// NumParameters returns the total scalar parameter count.
func (m *Model) NumParameters() int {
	t := 0
	for _, p := range m.Params() {
		t += p.NumValues()
	}
	return t
}

// GradientBytes returns the wire size of one gradient synchronization
// (float32 per parameter), used by the performance model for the
// all-reduce volume.
func (m *Model) GradientBytes() int64 { return int64(m.NumParameters()) * 4 }

// CopyWeightsFrom copies parameter values (not optimizer state) from o.
// Used to give every distributed rank identical initial weights.
func (m *Model) CopyWeightsFrom(o *Model) error {
	mp, op := m.Params(), o.Params()
	if len(mp) != len(op) {
		return fmt.Errorf("nn: model shapes differ")
	}
	for i := range mp {
		if !mp[i].W.SameShape(op[i].W) {
			return fmt.Errorf("nn: parameter %d shape differs", i)
		}
		copy(mp[i].W.Data, op[i].W.Data)
	}
	return nil
}
