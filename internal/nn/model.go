package nn

import (
	"fmt"
	"time"

	"salientpp/internal/rng"
	"salientpp/internal/sample"
	"salientpp/internal/tensor"
)

// Model is an L-layer GraphSAGE classifier: SAGE→ReLU(→dropout) repeated,
// with the final SAGE layer emitting class logits. The layer count must
// equal the MFG depth (one block per layer).
//
// Every intermediate of a batch (aggregations, activations, masks, layer
// outputs, gradients) comes from a pooled tensor arena owned by the model.
// The arena is recycled at the start of the next Forward call, so the
// returned logits and the side effects of Backward stay valid for exactly
// one batch and the steady-state compute path allocates nothing per batch.
type Model struct {
	Layers  []*SAGEConv
	Dropout float64

	// Backend runs the dense kernels (GEMMs) of every layer. NewModel sets
	// it to tensor.DefaultBackend(); swap it before the first Forward to
	// route compute through a different implementation.
	Backend tensor.Backend

	pool  *tensor.Pool
	arena *tensor.Arena

	timers StageTimers

	// forward caches (valid between Forward and Backward)
	caches   []sageCache      // one persistent slot per layer
	acts     []*tensor.Matrix // post-ReLU activations per hidden layer (training)
	masks    []*tensor.Matrix // dropout masks per hidden layer (training, Dropout > 0)
	params   []*Param         // cached stable parameter order
	dropRNG  *rng.RNG
	training bool // mode of the last Forward

	// layerDone, when set, is invoked by Backward the moment layer li's
	// parameter gradients are final — i.e. right after that layer's
	// backward kernel returns, while earlier layers are still being
	// differentiated. The pipeline uses it to launch layer li's gradient
	// all-reduce concurrently with layer li-1's backward compute.
	layerDone func(li int)
}

// NewModel builds a GraphSAGE with the given dimensions: inDim → hidden
// (layers-1 times) → classes, He-initialized from seed.
func NewModel(inDim, hidden, classes, layers int, dropout float64, seed uint64) (*Model, error) {
	if layers < 1 {
		return nil, fmt.Errorf("nn: need at least one layer")
	}
	if inDim <= 0 || hidden <= 0 || classes <= 1 {
		return nil, fmt.Errorf("nn: invalid dims in=%d hidden=%d classes=%d", inDim, hidden, classes)
	}
	r := rng.New(seed)
	pool := tensor.NewPool()
	m := &Model{Dropout: dropout, Backend: tensor.DefaultBackend(), dropRNG: r.Split(999), pool: pool, arena: tensor.NewArena(pool)}
	for l := 0; l < layers; l++ {
		in := hidden
		if l == 0 {
			in = inDim
		}
		out := hidden
		if l == layers-1 {
			out = classes
		}
		layer := NewSAGEConv(in, out)
		layer.WSelf.W.HeInit(in, r.Split(uint64(3*l)))
		layer.WNeigh.W.HeInit(in, r.Split(uint64(3*l+1)))
		// Bias stays zero.
		m.Layers = append(m.Layers, layer)
	}
	m.caches = make([]sageCache, layers)
	m.acts = make([]*tensor.Matrix, 0, layers)
	m.masks = make([]*tensor.Matrix, 0, layers)
	for _, l := range m.Layers {
		m.params = append(m.params, l.Params()...)
	}
	return m, nil
}

// Forward runs the model over one minibatch. x holds features for
// mfg.InputIDs() in order; training enables dropout and retains the
// intermediates Backward needs. Returns seed logits, which (like all batch
// intermediates) are valid until the next Forward call recycles the arena.
func (m *Model) Forward(mfg *sample.MFG, x *tensor.Matrix, training bool) (*tensor.Matrix, error) {
	if len(mfg.Blocks) != len(m.Layers) {
		return nil, fmt.Errorf("nn: MFG has %d blocks for %d layers", len(mfg.Blocks), len(m.Layers))
	}
	if x.Rows != len(mfg.InputIDs()) {
		return nil, fmt.Errorf("nn: feature rows %d != MFG inputs %d", x.Rows, len(mfg.InputIDs()))
	}
	m.arena.Release() // recycle the previous batch's working set
	m.acts = m.acts[:0]
	m.masks = m.masks[:0]
	m.training = training

	env := layerEnv{be: m.Backend, timers: &m.timers, training: training}
	h := x
	for li, layer := range m.Layers {
		out := layer.Forward(mfg.Blocks[li], h, m.arena, &m.caches[li], &env)
		if li < len(m.Layers)-1 {
			t0 := time.Now()
			out.ReLU()
			if training {
				act := m.arena.Get(out.Rows, out.Cols)
				copy(act.Data, out.Data) // pre-dropout activation for ReLU backward
				m.acts = append(m.acts, act)
				if m.Dropout > 0 {
					mask := m.arena.Get(out.Rows, out.Cols)
					out.Dropout(m.Dropout, mask, m.dropRNG)
					m.masks = append(m.masks, mask)
				}
			}
			m.timers.TransformNS += int64(time.Since(t0))
		}
		h = out
	}
	return h, nil
}

// TakeStageTimers returns the aggregate/transform/backward wall time
// accumulated since the last call, and resets the counters. The pipeline
// drains it once per round to attribute the compute stage.
func (m *Model) TakeStageTimers() StageTimers {
	t := m.timers
	m.timers = StageTimers{}
	return t
}

// Backward propagates dLogits through the cached forward pass,
// accumulating parameter gradients. The preceding Forward must have run
// with training == true (inference-mode Forward skips the caches that
// Backward consumes).
func (m *Model) Backward(dLogits *tensor.Matrix) {
	if !m.training {
		panic("nn: Backward requires a training-mode Forward")
	}
	t0 := time.Now()
	env := layerEnv{be: m.Backend, timers: &m.timers, training: true}
	grad := dLogits
	for li := len(m.Layers) - 1; li >= 0; li-- {
		grad = m.Layers[li].Backward(&m.caches[li], grad, m.arena, &env)
		if m.layerDone != nil {
			// Layer li's gradients are final: the remaining iterations only
			// touch layers < li, so a concurrent reader of layer li's params
			// is race-free from here on.
			m.layerDone(li)
		}
		if li > 0 {
			// Undo dropout and ReLU of the previous hidden activation.
			if m.Dropout > 0 {
				grad.Mul(m.masks[li-1])
			}
			tensor.ReLUBackward(grad, m.acts[li-1])
		}
	}
	m.timers.BackwardNS += int64(time.Since(t0))
}

// ReleaseBatch returns the current batch's intermediates (including the
// logits returned by Forward) to the model's pool without waiting for the
// next Forward call. Optional — Forward releases automatically.
func (m *Model) ReleaseBatch() {
	m.arena.Release()
	m.training = false
	m.acts = m.acts[:0]
	m.masks = m.masks[:0]
}

// RNGState returns the dropout stream's internal state. The stream advances
// sequentially across training batches, so checkpoints must capture it for
// a resumed run to apply the exact dropout masks the uninterrupted run
// would have.
func (m *Model) RNGState() [4]uint64 { return m.dropRNG.State() }

// SetRNGState restores the dropout stream captured by RNGState.
func (m *Model) SetRNGState(s [4]uint64) { m.dropRNG.SetState(s) }

// SetBackwardLayerHook installs (or, with nil, removes) the per-layer
// backward-completion callback: Backward calls fn(li) as soon as layer
// li's parameter gradients are fully accumulated, while the backward pass
// continues through earlier layers. fn runs on the goroutine executing
// Backward and must be cheap — the pipeline's hook just enqueues the
// layer index for its reducer goroutine.
func (m *Model) SetBackwardLayerHook(fn func(li int)) { m.layerDone = fn }

// LayerParams returns layer li's parameters, in the same relative order
// they appear in Params(). The overlapped all-reduce reduces one layer's
// group at a time.
func (m *Model) LayerParams(li int) []*Param { return m.Layers[li].Params() }

// Params returns all learnable parameters in a stable order.
func (m *Model) Params() []*Param { return m.params }

// ZeroGrad clears all gradients.
func (m *Model) ZeroGrad() {
	for _, p := range m.params {
		p.ZeroGrad()
	}
}

// NumParameters returns the total scalar parameter count.
func (m *Model) NumParameters() int {
	t := 0
	for _, p := range m.params {
		t += p.NumValues()
	}
	return t
}

// GradientBytes returns the wire size of one gradient synchronization
// (float32 per parameter), used by the performance model for the
// all-reduce volume.
func (m *Model) GradientBytes() int64 { return int64(m.NumParameters()) * 4 }

// CopyWeightsFrom copies parameter values (not optimizer state) from o.
// Used to give every distributed rank identical initial weights.
func (m *Model) CopyWeightsFrom(o *Model) error {
	mp, op := m.Params(), o.Params()
	if len(mp) != len(op) {
		return fmt.Errorf("nn: model shapes differ")
	}
	for i := range mp {
		if !mp[i].W.SameShape(op[i].W) {
			return fmt.Errorf("nn: parameter %d shape differs", i)
		}
		copy(mp[i].W.Data, op[i].W.Data)
	}
	return nil
}
