package nn

import (
	"fmt"

	"salientpp/internal/sample"
	"salientpp/internal/tensor"
)

// Frozen is a read-only snapshot of a Model for online inference. It holds
// only parameter values — no gradient accumulators and no Adam moments —
// so a snapshot costs one weight copy and roughly a quarter of the training
// model's parameter memory. Freezing decouples serving from training: the
// source model may keep training (mutating its weights) without affecting
// predictions served from the snapshot.
//
// Like Model, a Frozen owns a pooled arena for its batch intermediates, so
// the steady-state inference path allocates nothing per batch. A Frozen
// serves one goroutine at a time; concurrent serving loops each take their
// own snapshot (the per-layer weight copies are private, so snapshots
// never share mutable state).
type Frozen struct {
	layers  []*SAGEConv // gradient-free: only Param.W is populated
	caches  []sageCache
	arena   *tensor.Arena
	backend tensor.Backend
	timers  StageTimers
	inDim   int
	classes int

	// Reduced-precision state (FreezePrecision): quantized transposed
	// weights per layer and the persistent requantization scratch for
	// hidden activations. Empty on an fp32 snapshot.
	prec      tensor.Precision
	qlayers   []frozenQuantLayer
	hqScratch []tensor.QuantMatrix
}

// Freeze snapshots the model's current weights into a Frozen. The copy is
// deep: later optimizer steps on m do not change the snapshot.
func (m *Model) Freeze() *Frozen {
	f := &Frozen{
		arena:   tensor.NewArena(tensor.NewPool()),
		caches:  make([]sageCache, len(m.Layers)),
		backend: m.Backend,
		inDim:   m.Layers[0].InDim,
		classes: m.Layers[len(m.Layers)-1].OutDim,
	}
	for _, l := range m.Layers {
		fl := &SAGEConv{
			InDim:  l.InDim,
			OutDim: l.OutDim,
			WSelf:  &Param{W: l.WSelf.W.Clone()},
			WNeigh: &Param{W: l.WNeigh.W.Clone()},
			Bias:   &Param{W: l.Bias.W.Clone()},
		}
		f.layers = append(f.layers, fl)
	}
	return f
}

// InDim returns the snapshot's input feature dimension.
func (f *Frozen) InDim() int { return f.inDim }

// Classes returns the width of the logits Forward produces.
func (f *Frozen) Classes() int { return f.classes }

// NumLayers returns the snapshot's layer count (must equal the MFG depth).
func (f *Frozen) NumLayers() int { return len(f.layers) }

// Forward runs inference over one micro-batch. x holds features for
// mfg.InputIDs() in order. Dropout is never applied and no backward caches
// are retained beyond the per-layer scratch. The returned logits, like all
// batch intermediates, stay valid until the next Forward (or ReleaseBatch)
// recycles the arena.
func (f *Frozen) Forward(mfg *sample.MFG, x *tensor.Matrix) (*tensor.Matrix, error) {
	if len(mfg.Blocks) != len(f.layers) {
		return nil, fmt.Errorf("nn: MFG has %d blocks for %d frozen layers", len(mfg.Blocks), len(f.layers))
	}
	if x.Rows != len(mfg.InputIDs()) {
		return nil, fmt.Errorf("nn: feature rows %d != MFG inputs %d", x.Rows, len(mfg.InputIDs()))
	}
	f.arena.Release() // recycle the previous batch's working set
	env := layerEnv{be: f.backend, timers: &f.timers}
	h := x
	for li, layer := range f.layers {
		out := layer.Forward(mfg.Blocks[li], h, f.arena, &f.caches[li], &env)
		if li < len(f.layers)-1 {
			out.ReLU()
		}
		h = out
	}
	return h, nil
}

// TakeStageTimers returns the aggregate/transform time accumulated by
// Forward calls since the last call, and resets the counters (BackwardNS is
// always zero for a Frozen).
func (f *Frozen) TakeStageTimers() StageTimers {
	t := f.timers
	f.timers = StageTimers{}
	return t
}

// ReleaseBatch returns the current batch's intermediates (including the
// logits returned by Forward) to the snapshot's pool without waiting for
// the next Forward call. Optional — Forward releases automatically.
func (f *Frozen) ReleaseBatch() { f.arena.Release() }
