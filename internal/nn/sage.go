package nn

import (
	"runtime"
	"time"

	"salientpp/internal/sample"
	"salientpp/internal/tensor"
)

// StageTimers accumulates compute-stage wall time in nanoseconds, split the
// way the epoch benchmark reports it: neighbor aggregation, dense transforms
// (weight GEMMs, bias, activations), and the backward pass. Model and Frozen
// each own one; TakeStageTimers drains it.
type StageTimers struct {
	AggregateNS int64
	TransformNS int64
	BackwardNS  int64
}

// layerEnv is the execution context a Model or Frozen threads through its
// layers: which compute backend runs the GEMMs, where stage time is
// attributed, and whether forward intermediates must be retained for a
// backward pass.
type layerEnv struct {
	be       tensor.Backend
	timers   *StageTimers
	training bool
}

// fusedStripRows is the destination-row granularity of the fused
// aggregate+transform pass: neighbor means for one strip are streamed into
// the weight GEMM while still cache-hot, instead of materializing the whole
// aggregation before the first GEMM row is touched. 256 rows of a
// 128..256-wide fp32 aggregate is 128–256 KiB — L2-resident on the machines
// this targets. Strip boundaries depend only on the destination count, so
// results stay deterministic across worker counts.
const fusedStripRows = 256

// SAGEConv is a GraphSAGE layer with mean aggregation:
//
//	out_i = h_i·Wself + mean_{j ∈ sampled(i)} h_j·Wneigh + bias
//
// which is the "concat then linear" formulation with the linear layer
// split into its self and neighbor halves (algebraically identical,
// avoids materializing the concatenation).
type SAGEConv struct {
	InDim, OutDim int
	WSelf, WNeigh *Param
	Bias          *Param
}

// NewSAGEConv builds a layer; weights are initialized by the caller (see
// Model) so that the whole model shares one RNG stream.
func NewSAGEConv(inDim, outDim int) *SAGEConv {
	return &SAGEConv{
		InDim:  inDim,
		OutDim: outDim,
		WSelf:  NewParam(inDim, outDim),
		WNeigh: NewParam(inDim, outDim),
		Bias:   NewParam(1, outDim),
	}
}

// sageCache stores forward intermediates needed by the backward pass plus
// persistent per-layer scratch. The Model owns one cache per layer and
// reuses it every batch, so the steady-state forward/backward path
// allocates nothing: matrices come from the model's arena, and the
// reverse-CSR index grows once to its high-water mark.
type sageCache struct {
	block *sample.Block
	h     *tensor.Matrix // layer input (numInputs × InDim); caller-owned
	agg   *tensor.Matrix // mean-aggregated neighbors (numDst × InDim); arena-owned

	// hSelf and dhSelf are header-only views of the destination-row prefix
	// of h and dh; kept here so building them each batch allocates nothing.
	hSelf  tensor.Matrix
	dhSelf tensor.Matrix

	// aggStrip and outStrip are the fused pass's per-strip views. They live
	// in the cache (heap-resident) rather than on the Forward stack because
	// they are passed through the Backend interface, which escape analysis
	// cannot see through — stack-local headers would be forced to the heap
	// on every call.
	aggStrip tensor.Matrix
	outStrip tensor.Matrix

	// Reverse CSR of the block (input vertex -> incoming destination rows),
	// built per batch for the parallel backward scatter.
	revPtr []int32
	revCur []int32
	revIdx []int32
}

// Forward computes layer outputs for the block's destination vertices with
// the fused aggregate+transform pass: after the self GEMM fills the output,
// neighbor means are computed one strip of destination rows at a time and
// streamed straight into the WNeigh GEMM via MatMulAdd while the strip is
// cache-hot. In training mode the strips are views of a full arena-owned
// aggregation matrix (Backward consumes it); in inference mode one reused
// strip of scratch is the only aggregation storage — the full intermediate
// is never materialized.
//
// h holds representations of all block inputs (block.NumInputs() rows).
// Intermediates live in ar (released by the model before the next batch);
// cache is the layer's persistent scratch slot.
func (l *SAGEConv) Forward(b *sample.Block, h *tensor.Matrix, ar *tensor.Arena, cache *sageCache, env *layerEnv) *tensor.Matrix {
	if h.Rows != b.NumInputs() || h.Cols != l.InDim {
		panic("nn: SAGEConv input shape mismatch")
	}
	nd := b.NumDst
	var agg *tensor.Matrix
	if env.training {
		agg = ar.Get(nd, l.InDim)
	} else {
		rows := fusedStripRows
		if nd < rows {
			rows = nd
		}
		agg = ar.Get(rows, l.InDim)
	}

	cache.block = b
	cache.h = h
	cache.agg = agg
	cache.hSelf = tensor.Matrix{Rows: nd, Cols: l.InDim, Data: h.Data[:nd*l.InDim]}

	out := ar.Get(nd, l.OutDim)
	t0 := time.Now()
	env.be.MatMul(out, &cache.hSelf, l.WSelf.W)
	env.timers.TransformNS += int64(time.Since(t0))

	for lo := 0; lo < nd; lo += fusedStripRows {
		hi := lo + fusedStripRows
		if hi > nd {
			hi = nd
		}
		viewLo := lo
		if !env.training {
			viewLo = 0 // inference strips reuse the scratch from row 0
		}
		cache.aggStrip = tensor.Matrix{Rows: hi - lo, Cols: l.InDim, Data: agg.Data[viewLo*l.InDim : (viewLo+hi-lo)*l.InDim]}
		strip := &cache.aggStrip

		t0 = time.Now()
		if hi-lo < tensor.MinParallelRows || runtime.GOMAXPROCS(0) == 1 {
			aggForwardRange(strip, b, h, lo, lo, hi)
		} else {
			tensor.ParallelRows(hi-lo, func(flo, fhi int) { aggForwardRange(strip, b, h, lo, lo+flo, lo+fhi) })
		}
		t1 := time.Now()
		env.timers.AggregateNS += int64(t1.Sub(t0))

		cache.outStrip = tensor.Matrix{Rows: hi - lo, Cols: l.OutDim, Data: out.Data[lo*l.OutDim : hi*l.OutDim]}
		env.be.MatMulAdd(&cache.outStrip, strip, l.WNeigh.W)
		env.timers.TransformNS += int64(time.Since(t1))
	}

	t0 = time.Now()
	out.AddBias(l.Bias.W.Data)
	env.timers.TransformNS += int64(time.Since(t0))
	return out
}

// aggForwardRange mean-aggregates sampled neighbors for destination rows
// [lo, hi), writing destination row i to agg row i-base (the fused pass
// hands it strip views). Each worker owns disjoint destination rows and
// sums neighbors in column order, so results are identical at every worker
// count.
func aggForwardRange(agg *tensor.Matrix, b *sample.Block, h *tensor.Matrix, base, lo, hi int) {
	for i := lo; i < hi; i++ {
		out := agg.Row(i - base)
		eLo, eHi := b.RowPtr[i], b.RowPtr[i+1]
		if eLo == eHi {
			for j := range out {
				out[j] = 0
			}
			continue
		}
		copy(out, h.Row(int(b.Col[eLo])))
		for _, c := range b.Col[eLo+1 : eHi] {
			src := h.Row(int(c))
			for j, v := range src {
				out[j] += v
			}
		}
		inv := float32(1) / float32(eHi-eLo)
		for j := range out {
			out[j] *= inv
		}
	}
}

// Backward accumulates parameter gradients from dOut (numDst × OutDim) and
// returns the gradient with respect to the layer input h
// (numInputs × InDim), owned by ar.
func (l *SAGEConv) Backward(c *sageCache, dOut *tensor.Matrix, ar *tensor.Arena, env *layerEnv) *tensor.Matrix {
	b := c.block
	nd := b.NumDst
	if dOut.Rows != nd || dOut.Cols != l.OutDim {
		panic("nn: SAGEConv dOut shape mismatch")
	}

	// Parameter gradients (accumulate).
	gw := ar.Get(l.InDim, l.OutDim)
	env.be.MatMulATB(gw, &c.hSelf, dOut)
	l.WSelf.G.Add(gw)
	env.be.MatMulATB(gw, c.agg, dOut)
	l.WNeigh.G.Add(gw)
	for i := 0; i < nd; i++ {
		row := dOut.Row(i)
		for j, v := range row {
			l.Bias.G.Data[j] += v
		}
	}

	nin := b.NumInputs()
	dh := ar.Get(nin, l.InDim)
	// Self path: the destination prefix of dh gets dOut·WSelfᵀ, written in
	// place through a header view (MatMulABT overwrites, no zeroing needed).
	c.dhSelf = tensor.Matrix{Rows: nd, Cols: l.InDim, Data: dh.Data[:nd*l.InDim]}
	env.be.MatMulABT(&c.dhSelf, dOut, l.WSelf.W)
	// Neighbor path: dAgg = dOut·WNeighᵀ, split evenly among sampled
	// neighbors (mean backward). The scatter runs input-major over a reverse
	// CSR of the block so that workers own disjoint dh rows; contributions
	// accumulate in ascending destination order, making the result
	// independent of the worker count (and bitwise equal to the serial
	// destination-major scatter).
	dAgg := ar.Get(nd, l.InDim)
	env.be.MatMulABT(dAgg, dOut, l.WNeigh.W)
	// Pre-scale each dAgg row by its mean reciprocal once (one division per
	// destination instead of one per edge; the per-edge v·inv products are
	// unchanged, so the scatter stays bitwise identical).
	if nd < tensor.MinParallelRows {
		scaleMeanRange(dAgg, b, 0, nd)
	} else {
		tensor.ParallelRows(nd, func(lo, hi int) { scaleMeanRange(dAgg, b, lo, hi) })
	}
	c.buildReverse(nin)
	if nin < tensor.MinParallelRows {
		scatterBackwardRange(dh, dAgg, c.revPtr, c.revIdx, nd, 0, nin)
	} else {
		tensor.ParallelRows(nin, func(lo, hi int) {
			scatterBackwardRange(dh, dAgg, c.revPtr, c.revIdx, nd, lo, hi)
		})
	}
	return dh
}

// scaleMeanRange multiplies dAgg rows [lo, hi) by 1/degree. Rows with no
// sampled neighbors are never referenced by the reverse index and are left
// untouched.
func scaleMeanRange(dAgg *tensor.Matrix, b *sample.Block, lo, hi int) {
	for i := lo; i < hi; i++ {
		deg := b.RowPtr[i+1] - b.RowPtr[i]
		if deg == 0 {
			continue
		}
		inv := float32(1) / float32(deg)
		row := dAgg.Row(i)
		for j := range row {
			row[j] *= inv
		}
	}
}

// buildReverse fills c.revPtr/c.revIdx with the transpose of the block's
// CSR: for input row u, revIdx[revPtr[u]:revPtr[u+1]] lists the destination
// rows that sampled u, in ascending order. Scratch persists across batches.
func (c *sageCache) buildReverse(nin int) {
	b := c.block
	if cap(c.revPtr) < nin+1 {
		c.revPtr = make([]int32, nin+1)
		c.revCur = make([]int32, nin)
	} else {
		c.revPtr = c.revPtr[:nin+1]
		c.revCur = c.revCur[:nin]
		for i := range c.revPtr {
			c.revPtr[i] = 0
		}
	}
	for _, col := range b.Col {
		c.revPtr[col+1]++
	}
	for u := 0; u < nin; u++ {
		c.revPtr[u+1] += c.revPtr[u]
		c.revCur[u] = c.revPtr[u]
	}
	if cap(c.revIdx) < len(b.Col) {
		c.revIdx = make([]int32, len(b.Col))
	} else {
		c.revIdx = c.revIdx[:len(b.Col)]
	}
	for i := 0; i < b.NumDst; i++ {
		for _, col := range b.Col[b.RowPtr[i]:b.RowPtr[i+1]] {
			c.revIdx[c.revCur[col]] = int32(i)
			c.revCur[col]++
		}
	}
}

// scatterBackwardRange accumulates the (pre-scaled) mean-backward neighbor
// gradients into dh rows [lo, hi). Rows at and beyond the destination
// prefix start from zero; prefix rows already hold the self-path gradient.
func scatterBackwardRange(dh, dAgg *tensor.Matrix, revPtr, revIdx []int32, nd, lo, hi int) {
	for u := lo; u < hi; u++ {
		dst := dh.Row(u)
		if u >= nd {
			for j := range dst {
				dst[j] = 0
			}
		}
		for _, t := range revIdx[revPtr[u]:revPtr[u+1]] {
			src := dAgg.Row(int(t))
			for j, v := range src {
				dst[j] += v
			}
		}
	}
}

// Params returns the layer's learnable parameters.
func (l *SAGEConv) Params() []*Param { return []*Param{l.WSelf, l.WNeigh, l.Bias} }
