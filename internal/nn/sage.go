package nn

import (
	"salientpp/internal/sample"
	"salientpp/internal/tensor"
)

// SAGEConv is a GraphSAGE layer with mean aggregation:
//
//	out_i = h_i·Wself + mean_{j ∈ sampled(i)} h_j·Wneigh + bias
//
// which is the "concat then linear" formulation with the linear layer
// split into its self and neighbor halves (algebraically identical,
// avoids materializing the concatenation).
type SAGEConv struct {
	InDim, OutDim int
	WSelf, WNeigh *Param
	Bias          *Param
}

// NewSAGEConv builds a layer; weights are initialized by the caller (see
// Model) so that the whole model shares one RNG stream.
func NewSAGEConv(inDim, outDim int) *SAGEConv {
	return &SAGEConv{
		InDim:  inDim,
		OutDim: outDim,
		WSelf:  NewParam(inDim, outDim),
		WNeigh: NewParam(inDim, outDim),
		Bias:   NewParam(1, outDim),
	}
}

// sageCache stores forward intermediates needed by the backward pass.
type sageCache struct {
	block *sample.Block
	h     *tensor.Matrix // layer input (numInputs × InDim)
	agg   *tensor.Matrix // mean-aggregated neighbors (numDst × InDim)
}

// Forward computes layer outputs for the block's destination vertices.
// h holds representations of all block inputs (block.NumInputs() rows).
func (l *SAGEConv) Forward(b *sample.Block, h *tensor.Matrix) (*tensor.Matrix, *sageCache) {
	if h.Rows != b.NumInputs() || h.Cols != l.InDim {
		panic("nn: SAGEConv input shape mismatch")
	}
	nd := b.NumDst
	agg := tensor.New(nd, l.InDim)
	for i := 0; i < nd; i++ {
		lo, hi := b.RowPtr[i], b.RowPtr[i+1]
		if lo == hi {
			continue
		}
		out := agg.Row(i)
		for _, c := range b.Col[lo:hi] {
			src := h.Row(int(c))
			for j, v := range src {
				out[j] += v
			}
		}
		inv := float32(1) / float32(hi-lo)
		for j := range out {
			out[j] *= inv
		}
	}

	out := tensor.New(nd, l.OutDim)
	tensor.MatMul(out, &tensor.Matrix{Rows: nd, Cols: l.InDim, Data: h.Data[:nd*l.InDim]}, l.WSelf.W)
	tmp := tensor.New(nd, l.OutDim)
	tensor.MatMul(tmp, agg, l.WNeigh.W)
	out.Add(tmp)
	out.AddBias(l.Bias.W.Data)
	return out, &sageCache{block: b, h: h, agg: agg}
}

// Backward accumulates parameter gradients from dOut (numDst × OutDim) and
// returns the gradient with respect to the layer input h
// (numInputs × InDim).
func (l *SAGEConv) Backward(c *sageCache, dOut *tensor.Matrix) *tensor.Matrix {
	b := c.block
	nd := b.NumDst
	if dOut.Rows != nd || dOut.Cols != l.OutDim {
		panic("nn: SAGEConv dOut shape mismatch")
	}

	hDst := &tensor.Matrix{Rows: nd, Cols: l.InDim, Data: c.h.Data[:nd*l.InDim]}

	// Parameter gradients (accumulate).
	gw := tensor.New(l.InDim, l.OutDim)
	tensor.MatMulATB(gw, hDst, dOut)
	l.WSelf.G.Add(gw)
	tensor.MatMulATB(gw, c.agg, dOut)
	l.WNeigh.G.Add(gw)
	for i := 0; i < nd; i++ {
		row := dOut.Row(i)
		for j, v := range row {
			l.Bias.G.Data[j] += v
		}
	}

	// Input gradients.
	dh := tensor.New(b.NumInputs(), l.InDim)
	// Self path: rows 0..nd-1 get dOut·WSelfᵀ.
	dSelf := tensor.New(nd, l.InDim)
	tensor.MatMulABT(dSelf, dOut, l.WSelf.W)
	copy(dh.Data[:nd*l.InDim], dSelf.Data)
	// Neighbor path: dAgg = dOut·WNeighᵀ, split evenly among sampled
	// neighbors (mean backward).
	dAgg := tensor.New(nd, l.InDim)
	tensor.MatMulABT(dAgg, dOut, l.WNeigh.W)
	for i := 0; i < nd; i++ {
		lo, hi := b.RowPtr[i], b.RowPtr[i+1]
		if lo == hi {
			continue
		}
		inv := float32(1) / float32(hi-lo)
		src := dAgg.Row(i)
		for _, col := range b.Col[lo:hi] {
			dst := dh.Row(int(col))
			for j, v := range src {
				dst[j] += v * inv
			}
		}
	}
	return dh
}

// Params returns the layer's learnable parameters.
func (l *SAGEConv) Params() []*Param { return []*Param{l.WSelf, l.WNeigh, l.Bias} }
