package nn

import (
	"testing"

	"salientpp/internal/dataset"
	"salientpp/internal/rng"
	"salientpp/internal/sample"
	"salientpp/internal/tensor"
)

// TestForwardBackwardAllocationFree is the allocation-regression guard for
// the model's steady-state compute path: once the arena, pool buckets, and
// per-layer scratch are warm, a full Forward + loss + Backward cycle must
// not touch the heap. The batch is sized below tensor.MinParallelRows so
// every kernel takes its inline (closure-free) path, matching what
// testing.AllocsPerRun measures under GOMAXPROCS=1.
func TestForwardBackwardAllocationFree(t *testing.T) {
	d, err := dataset.Generate(dataset.SyntheticConfig{
		Name: "alloc", NumVertices: 200, AvgDegree: 6, FeatureDim: 6,
		NumClasses: 3, TrainFrac: 0.5, FeatureNoise: 0.3,
		Materialize: true, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sample.NewSampler(d.Graph, []int{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	seeds := d.TrainIDs()[:8]
	mfg := s.NewWorker(rng.New(5)).Sample(seeds)
	if inputs := len(mfg.InputIDs()); inputs >= tensor.MinParallelRows {
		t.Fatalf("batch too wide for the serial-path assertion: %d inputs", inputs)
	}
	x := tensor.New(len(mfg.InputIDs()), d.FeatureDim)
	for i, v := range mfg.InputIDs() {
		copy(x.Row(i), d.FeatureRow(v))
	}
	labels := make([]int32, len(seeds))
	for i, v := range seeds {
		labels[i] = d.Labels[v]
	}
	m, err := NewModel(d.FeatureDim, 8, d.NumClasses, 2, 0.3, 11)
	if err != nil {
		t.Fatal(err)
	}
	dL := tensor.New(len(seeds), d.NumClasses)

	step := func() {
		logits, err := m.Forward(mfg, x, true)
		if err != nil {
			t.Fatal(err)
		}
		tensor.SoftmaxCrossEntropy(logits, labels, dL)
		tensor.Accuracy(logits, labels)
		m.ZeroGrad()
		m.Backward(dL)
	}
	for i := 0; i < 3; i++ {
		step() // warm pool buckets and per-layer scratch
	}
	allocs := testing.AllocsPerRun(50, step)
	if allocs != 0 {
		t.Fatalf("warm Forward+Backward allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkForwardBackwardWarm measures one steady-state training step at
// realistic batch width (parallel kernel paths engaged); run with
// -benchmem — per-step allocations amortize toward the handful of
// goroutine spawns the parallel kernels cost, not per-matrix heap churn.
func BenchmarkForwardBackwardWarm(b *testing.B) {
	d, err := dataset.Generate(dataset.SyntheticConfig{
		Name: "bench", NumVertices: 20000, AvgDegree: 15, FeatureDim: 128,
		NumClasses: 32, TrainFrac: 0.2, FeatureNoise: 0.4,
		Materialize: true, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	s, err := sample.NewSampler(d.Graph, []int{15, 10, 5})
	if err != nil {
		b.Fatal(err)
	}
	seeds := d.TrainIDs()[:128]
	mfg := s.NewWorker(rng.New(2)).Sample(seeds)
	x := tensor.New(len(mfg.InputIDs()), d.FeatureDim)
	for i, v := range mfg.InputIDs() {
		copy(x.Row(i), d.FeatureRow(v))
	}
	labels := make([]int32, len(seeds))
	for i, v := range seeds {
		labels[i] = d.Labels[v]
	}
	m, err := NewModel(d.FeatureDim, 256, d.NumClasses, 3, 0, 4)
	if err != nil {
		b.Fatal(err)
	}
	dL := tensor.New(len(seeds), d.NumClasses)
	if _, err := m.Forward(mfg, x, true); err != nil {
		b.Fatal(err) // warm the arena pool so B/op reflects steady state
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits, err := m.Forward(mfg, x, true)
		if err != nil {
			b.Fatal(err)
		}
		tensor.SoftmaxCrossEntropy(logits, labels, dL)
		m.ZeroGrad()
		m.Backward(dL)
	}
}

// TestBackwardPanicsAfterInferenceForward pins the new cache contract:
// inference-mode Forward skips the intermediates Backward consumes.
func TestBackwardPanicsAfterInferenceForward(t *testing.T) {
	d, err := dataset.Generate(dataset.SyntheticConfig{
		Name: "infer", NumVertices: 100, AvgDegree: 5, FeatureDim: 4,
		NumClasses: 2, TrainFrac: 0.5, FeatureNoise: 0.3,
		Materialize: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sample.NewSampler(d.Graph, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	mfg := s.NewWorker(rng.New(1)).Sample(d.TrainIDs()[:4])
	x := tensor.New(len(mfg.InputIDs()), d.FeatureDim)
	m, err := NewModel(d.FeatureDim, 4, d.NumClasses, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	logits, err := m.Forward(mfg, x, false)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Backward after inference Forward did not panic")
		}
	}()
	m.Backward(tensor.New(logits.Rows, logits.Cols))
}
