package nn

import (
	"fmt"
	"time"

	"salientpp/internal/sample"
	"salientpp/internal/tensor"
)

// frozenQuantLayer holds one layer's reduced-precision state: the two
// weight matrices packed transposed (OutDim × InDim, quantized per output
// row so each output channel gets its own scale) plus the persistent
// aggregation-strip scratch. Bias stays fp32 — it is added after the
// integer GEMMs produce float32 outputs.
type frozenQuantLayer struct {
	wselfT  tensor.QuantMatrix
	wneighT tensor.QuantMatrix
	aggQ    tensor.QuantMatrix // quantized image of the current aggregation strip
}

// FreezePrecision snapshots the model like Freeze and, for a reduced
// precision, additionally packs every layer's weights into quantized
// transposed form so ForwardQuant can run GEMMs directly over quantized
// operands. PrecisionFP32 returns a plain fp32 snapshot (identical to
// Freeze).
func (m *Model) FreezePrecision(p tensor.Precision) *Frozen {
	f := m.Freeze()
	f.prec = p
	if p == tensor.PrecisionFP32 {
		return f
	}
	f.qlayers = make([]frozenQuantLayer, len(f.layers))
	f.hqScratch = make([]tensor.QuantMatrix, len(f.layers))
	var wt *tensor.Matrix
	for li, l := range f.layers {
		if wt == nil || wt.Rows != l.OutDim || wt.Cols != l.InDim {
			wt = tensor.New(l.OutDim, l.InDim)
		}
		for _, pack := range []struct {
			w   *tensor.Matrix
			dst *tensor.QuantMatrix
		}{{l.WSelf.W, &f.qlayers[li].wselfT}, {l.WNeigh.W, &f.qlayers[li].wneighT}} {
			for i := 0; i < pack.w.Rows; i++ {
				row := pack.w.Row(i)
				for j, v := range row {
					wt.Set(j, i, v)
				}
			}
			pack.dst.Quantize(p, wt)
		}
	}
	return f
}

// Precision returns the snapshot's compute precision (PrecisionFP32 for a
// plain Freeze).
func (f *Frozen) Precision() tensor.Precision { return f.prec }

// ForwardQuant runs inference over one micro-batch entirely in the
// snapshot's reduced precision: xq holds the quantized features of
// mfg.InputIDs() (a Store.GatherQuant result feeds it directly), weight
// GEMMs run over quantized operands (the int8 path through the integer
// SIMD kernel), and hidden activations are requantized between layers.
// Aggregation follows the fused strip discipline of the fp32 path:
// neighbor means dequantize-accumulate into one reused fp32 strip, which
// is quantized and streamed into the WNeigh GEMM while cache-hot — the
// full fp32 feature matrix is never materialized at any layer.
//
// The returned logits are fp32 (the final layer is never requantized) and
// stay valid until the next Forward/ForwardQuant recycles the arena.
func (f *Frozen) ForwardQuant(mfg *sample.MFG, xq *tensor.QuantMatrix) (*tensor.Matrix, error) {
	if f.prec == tensor.PrecisionFP32 {
		return nil, fmt.Errorf("nn: ForwardQuant needs a FreezePrecision snapshot with a reduced precision")
	}
	if len(mfg.Blocks) != len(f.layers) {
		return nil, fmt.Errorf("nn: MFG has %d blocks for %d frozen layers", len(mfg.Blocks), len(f.layers))
	}
	if xq.Rows != len(mfg.InputIDs()) {
		return nil, fmt.Errorf("nn: quantized feature rows %d != MFG inputs %d", xq.Rows, len(mfg.InputIDs()))
	}
	if xq.Prec != f.prec {
		return nil, fmt.Errorf("nn: features quantized as %v, snapshot expects %v", xq.Prec, f.prec)
	}
	f.arena.Release()
	hq := xq
	var out *tensor.Matrix
	for li, layer := range f.layers {
		b := mfg.Blocks[li]
		if hq.Rows != b.NumInputs() || hq.Cols != layer.InDim {
			return nil, fmt.Errorf("nn: layer %d input is %dx%d, block wants %dx%d", li, hq.Rows, hq.Cols, b.NumInputs(), layer.InDim)
		}
		ql := &f.qlayers[li]
		nd := b.NumDst
		out = f.arena.Get(nd, layer.OutDim)

		t0 := time.Now()
		hSelfQ := hq.RowSlice(nd)
		tensor.MatMulQuant(out, &hSelfQ, &ql.wselfT, false)
		f.timers.TransformNS += int64(time.Since(t0))

		stripRows := fusedStripRows
		if nd < stripRows {
			stripRows = nd
		}
		aggStrip := f.arena.Get(stripRows, layer.InDim)
		for lo := 0; lo < nd; lo += fusedStripRows {
			hi := lo + fusedStripRows
			if hi > nd {
				hi = nd
			}
			t0 = time.Now()
			for i := lo; i < hi; i++ {
				dst := aggStrip.Row(i - lo)
				eLo, eHi := b.RowPtr[i], b.RowPtr[i+1]
				if eLo == eHi {
					for j := range dst {
						dst[j] = 0
					}
					continue
				}
				hq.DequantizeRow(dst, int(b.Col[eLo]))
				for _, c := range b.Col[eLo+1 : eHi] {
					hq.AccumulateRow(dst, int(c))
				}
				inv := float32(1) / float32(eHi-eLo)
				for j := range dst {
					dst[j] *= inv
				}
			}
			t1 := time.Now()
			f.timers.AggregateNS += int64(t1.Sub(t0))

			ql.aggQ.Resize(f.prec, hi-lo, layer.InDim)
			for i := 0; i < hi-lo; i++ {
				ql.aggQ.SetRow(i, aggStrip.Row(i))
			}
			outStrip := tensor.Matrix{Rows: hi - lo, Cols: layer.OutDim, Data: out.Data[lo*layer.OutDim : hi*layer.OutDim]}
			tensor.MatMulQuant(&outStrip, &ql.aggQ, &ql.wneighT, true)
			f.timers.TransformNS += int64(time.Since(t1))
		}

		t0 = time.Now()
		out.AddBias(layer.Bias.W.Data)
		if li < len(f.layers)-1 {
			out.ReLU()
			// Requantize the hidden activations for the next layer's GEMMs;
			// the scratch grows once to its high-water mark.
			f.hqScratch[li].Quantize(f.prec, out)
			hq = &f.hqScratch[li]
		}
		f.timers.TransformNS += int64(time.Since(t0))
	}
	return out, nil
}
