package nn

import (
	"math"
	"testing"

	"salientpp/internal/dataset"
	"salientpp/internal/rng"
	"salientpp/internal/sample"
	"salientpp/internal/tensor"
)

// handBlock builds a tiny block: 2 destinations, 4 inputs.
// dst 0 samples inputs {2, 3}; dst 1 samples input {3}.
func testEnv() *layerEnv {
	return &layerEnv{be: tensor.DefaultBackend(), timers: &StageTimers{}, training: true}
}

func handBlock() *sample.Block {
	return &sample.Block{
		NumDst:   2,
		InputIDs: []int32{10, 11, 12, 13},
		RowPtr:   []int32{0, 2, 3},
		Col:      []int32{2, 3, 3},
	}
}

func TestSAGEConvForwardKnown(t *testing.T) {
	l := NewSAGEConv(1, 1)
	l.WSelf.W.Set(0, 0, 2)  // out += 2·h_self
	l.WNeigh.W.Set(0, 0, 3) // out += 3·mean(h_nbrs)
	l.Bias.W.Set(0, 0, 0.5)
	h := tensor.FromSlice(4, 1, []float32{1, 2, 4, 8})
	ar := tensor.NewArena(tensor.NewPool())
	var c sageCache
	out := l.Forward(handBlock(), h, ar, &c, testEnv())
	// dst0: 2·1 + 3·mean(4,8) + 0.5 = 2 + 18 + 0.5 = 20.5
	// dst1: 2·2 + 3·8 + 0.5 = 28.5
	if math.Abs(float64(out.At(0, 0))-20.5) > 1e-6 {
		t.Fatalf("dst0 = %v", out.At(0, 0))
	}
	if math.Abs(float64(out.At(1, 0))-28.5) > 1e-6 {
		t.Fatalf("dst1 = %v", out.At(1, 0))
	}
}

func TestSAGEConvIsolatedDst(t *testing.T) {
	// A destination with no sampled neighbors aggregates zero.
	b := &sample.Block{NumDst: 1, InputIDs: []int32{5}, RowPtr: []int32{0, 0}, Col: nil}
	l := NewSAGEConv(2, 2)
	l.WSelf.W.Set(0, 0, 1)
	l.WSelf.W.Set(1, 1, 1)
	h := tensor.FromSlice(1, 2, []float32{3, 4})
	ar := tensor.NewArena(tensor.NewPool())
	var c sageCache
	out := l.Forward(b, h, ar, &c, testEnv())
	if out.At(0, 0) != 3 || out.At(0, 1) != 4 {
		t.Fatalf("isolated dst: %v", out.Data)
	}
}

// buildTinyMFG samples a 2-layer MFG over a small graph for grad checks.
func buildTinyMFG(t *testing.T) (*sample.MFG, *tensor.Matrix, []int32) {
	t.Helper()
	d, err := dataset.Generate(dataset.SyntheticConfig{
		Name: "tiny", NumVertices: 60, AvgDegree: 6, FeatureDim: 5,
		NumClasses: 3, TrainFrac: 0.5, FeatureNoise: 0.3,
		Materialize: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sample.NewSampler(d.Graph, []int{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	seeds := d.TrainIDs()[:6]
	mfg := s.NewWorker(rng.New(3)).Sample(seeds)
	x := tensor.New(len(mfg.InputIDs()), d.FeatureDim)
	for i, v := range mfg.InputIDs() {
		copy(x.Row(i), d.FeatureRow(v))
	}
	labels := make([]int32, len(seeds))
	for i, v := range seeds {
		labels[i] = d.Labels[v]
	}
	return mfg, x, labels
}

// Full-model gradient check by central differences.
func TestModelGradientCheck(t *testing.T) {
	mfg, x, labels := buildTinyMFG(t)
	m, err := NewModel(5, 4, 3, 2, 0, 11)
	if err != nil {
		t.Fatal(err)
	}

	lossAt := func() float64 {
		logits, err := m.Forward(mfg, x, false)
		if err != nil {
			t.Fatal(err)
		}
		return tensor.SoftmaxCrossEntropy(logits, labels, nil)
	}

	logits, err := m.Forward(mfg, x, true)
	if err != nil {
		t.Fatal(err)
	}
	dLogits := tensor.New(logits.Rows, logits.Cols)
	tensor.SoftmaxCrossEntropy(logits, labels, dLogits)
	m.ZeroGrad()
	m.Backward(dLogits)

	const eps = 1e-2
	checked := 0
	for pi, p := range m.Params() {
		for i := 0; i < len(p.W.Data); i += 3 { // subsample for speed
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := lossAt()
			p.W.Data[i] = orig - eps
			lm := lossAt()
			p.W.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(p.G.Data[i])
			if math.Abs(numeric-analytic) > 2e-2+0.05*math.Abs(numeric) {
				t.Fatalf("param %d[%d]: analytic %v numeric %v", pi, i, analytic, numeric)
			}
			checked++
		}
	}
	if checked < 20 {
		t.Fatalf("only %d gradients checked", checked)
	}
}

func TestModelForwardShapeErrors(t *testing.T) {
	mfg, x, _ := buildTinyMFG(t)
	m, _ := NewModel(5, 4, 3, 3, 0, 1) // 3 layers vs 2-block MFG
	if _, err := m.Forward(mfg, x, false); err == nil {
		t.Fatal("expected layer/block mismatch error")
	}
	m2, _ := NewModel(5, 4, 3, 2, 0, 1)
	bad := tensor.New(x.Rows-1, x.Cols)
	if _, err := m2.Forward(mfg, bad, false); err == nil {
		t.Fatal("expected feature rows error")
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(5, 4, 3, 0, 0, 1); err == nil {
		t.Fatal("expected layers error")
	}
	if _, err := NewModel(0, 4, 3, 2, 0, 1); err == nil {
		t.Fatal("expected dim error")
	}
	if _, err := NewModel(5, 4, 1, 2, 0, 1); err == nil {
		t.Fatal("expected classes error")
	}
}

func TestModelDeterministicInit(t *testing.T) {
	a, _ := NewModel(5, 8, 3, 2, 0, 42)
	b, _ := NewModel(5, 8, 3, 2, 0, 42)
	ap, bp := a.Params(), b.Params()
	for i := range ap {
		if tensor.MaxAbsDiff(ap[i].W, bp[i].W) != 0 {
			t.Fatal("same seed produced different weights")
		}
	}
	c, _ := NewModel(5, 8, 3, 2, 0, 43)
	if tensor.MaxAbsDiff(ap[0].W, c.Params()[0].W) == 0 {
		t.Fatal("different seeds produced identical weights")
	}
}

func TestCopyWeightsFrom(t *testing.T) {
	a, _ := NewModel(5, 8, 3, 2, 0, 1)
	b, _ := NewModel(5, 8, 3, 2, 0, 2)
	if err := b.CopyWeightsFrom(a); err != nil {
		t.Fatal(err)
	}
	ap, bp := a.Params(), b.Params()
	for i := range ap {
		if tensor.MaxAbsDiff(ap[i].W, bp[i].W) != 0 {
			t.Fatal("weights differ after copy")
		}
	}
	c, _ := NewModel(6, 8, 3, 2, 0, 3)
	if err := c.CopyWeightsFrom(a); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestAdamMinimizesQuadratic(t *testing.T) {
	// Minimize f(w) = Σ (w_i - target_i)² with explicit gradients.
	p := NewParam(1, 4)
	target := []float32{1, -2, 3, 0.5}
	opt := NewAdam(0.05)
	for step := 0; step < 400; step++ {
		for i := range p.W.Data {
			p.G.Data[i] = 2 * (p.W.Data[i] - target[i])
		}
		opt.Step([]*Param{p})
	}
	for i := range target {
		if math.Abs(float64(p.W.Data[i]-target[i])) > 0.05 {
			t.Fatalf("Adam failed to converge: w=%v", p.W.Data)
		}
	}
	if opt.StepCount() != 400 {
		t.Fatalf("step count %d", opt.StepCount())
	}
}

// End-to-end single-machine training sanity: loss decreases and train
// accuracy beats chance on a learnable synthetic dataset.
func TestTrainingConverges(t *testing.T) {
	d, err := dataset.Generate(dataset.SyntheticConfig{
		Name: "conv", NumVertices: 1200, AvgDegree: 8, FeatureDim: 16,
		NumClasses: 4, TrainFrac: 0.3, FeatureNoise: 0.4,
		Materialize: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sample.NewSampler(d.Graph, []int{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(d.FeatureDim, 32, d.NumClasses, 2, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewAdam(0.01)
	train := d.TrainIDs()
	r := rng.New(9)
	w := s.NewWorker(r.Split(1))

	runEpoch := func(update bool) (float64, float64) {
		var lossSum, accSum float64
		batches := sample.EpochBatches(train, 64, r.Split(uint64(opt.StepCount())))
		for _, seeds := range batches {
			mfg := w.Sample(seeds)
			x := tensor.New(len(mfg.InputIDs()), d.FeatureDim)
			for i, v := range mfg.InputIDs() {
				copy(x.Row(i), d.FeatureRow(v))
			}
			labels := make([]int32, len(seeds))
			for i, v := range seeds {
				labels[i] = d.Labels[v]
			}
			logits, err := m.Forward(mfg, x, update)
			if err != nil {
				t.Fatal(err)
			}
			dL := tensor.New(logits.Rows, logits.Cols)
			lossSum += tensor.SoftmaxCrossEntropy(logits, labels, dL)
			accSum += tensor.Accuracy(logits, labels)
			if update {
				m.ZeroGrad()
				m.Backward(dL)
				opt.Step(m.Params())
			}
		}
		nb := float64(len(batches))
		return lossSum / nb, accSum / nb
	}

	loss0, _ := runEpoch(false)
	for e := 0; e < 5; e++ {
		runEpoch(true)
	}
	loss1, acc1 := runEpoch(false)
	if loss1 >= loss0*0.8 {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", loss0, loss1)
	}
	if acc1 < 0.5 {
		t.Fatalf("train accuracy %.3f below 0.5 after training", acc1)
	}
}

func TestGradientBytes(t *testing.T) {
	m, _ := NewModel(10, 8, 4, 2, 0, 1)
	// Layer 0: 2·(10×8) + 8; layer 1: 2·(8×4) + 4 = 168 + 68 = 236 params.
	want := int64((10*8*2 + 8 + 8*4*2 + 4) * 4)
	if m.GradientBytes() != want {
		t.Fatalf("GradientBytes=%d want %d", m.GradientBytes(), want)
	}
}
