// Package nn implements the GraphSAGE model trained by SALIENT++: mean
// aggregation through message-flow-graph blocks, ReLU, dropout, a fused
// softmax/cross-entropy head, and the Adam optimizer — forward and backward
// passes written from scratch over the tensor package.
package nn

import "salientpp/internal/tensor"

// Param is a learnable tensor with its gradient accumulator and Adam
// moment estimates.
type Param struct {
	W *tensor.Matrix // value
	G *tensor.Matrix // gradient (accumulated per step)
	M *tensor.Matrix // Adam first moment
	V *tensor.Matrix // Adam second moment
}

// NewParam allocates a parameter of the given shape with zeroed state.
func NewParam(rows, cols int) *Param {
	return &Param{
		W: tensor.New(rows, cols),
		G: tensor.New(rows, cols),
		M: tensor.New(rows, cols),
		V: tensor.New(rows, cols),
	}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.G.Zero() }

// NumValues returns the number of scalar parameters.
func (p *Param) NumValues() int { return len(p.W.Data) }
