// Package nn implements the GraphSAGE model trained by SALIENT++: mean
// aggregation through message-flow-graph blocks, ReLU, dropout, a fused
// softmax/cross-entropy head, and the Adam optimizer — forward and backward
// passes written from scratch over the tensor package.
package nn

import "salientpp/internal/tensor"

// Param is a learnable tensor with its gradient accumulator and Adam
// moment estimates.
type Param struct {
	W *tensor.Matrix // value
	G *tensor.Matrix // gradient (accumulated per step)
	M *tensor.Matrix // Adam first moment
	V *tensor.Matrix // Adam second moment

	// EF is the error-feedback residual for lossy gradient compression:
	// the quantization error left over from the previous round's
	// all-reduce, added back into the next round's gradient before
	// encoding (dist.GradReducer). Nil until EnsureResidual — fp32 runs
	// never allocate it. Checkpointed (format v4) so a resumed lossy run
	// replays the uninterrupted trajectory bitwise.
	EF []float32
}

// NewParam allocates a parameter of the given shape with zeroed state.
func NewParam(rows, cols int) *Param {
	return &Param{
		W: tensor.New(rows, cols),
		G: tensor.New(rows, cols),
		M: tensor.New(rows, cols),
		V: tensor.New(rows, cols),
	}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.G.Zero() }

// NumValues returns the number of scalar parameters.
func (p *Param) NumValues() int { return len(p.W.Data) }

// EnsureResidual allocates the error-feedback buffer if it is missing.
// Idempotent; called once at setup when a lossy gradient codec is
// configured.
func (p *Param) EnsureResidual() {
	if p.EF == nil {
		p.EF = make([]float32, len(p.W.Data))
	}
}
