package nn

import "math"

// Adam is the Adam optimizer (Kingma & Ba) with optional weight decay,
// matching the paper's training setup (fixed learning rate 0.001).
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	step int
}

// NewAdam returns Adam with the standard hyperparameters and the given
// learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one update to every parameter using its accumulated
// gradient, then leaves gradients untouched (callers ZeroGrad explicitly,
// mirroring the PyTorch idiom).
func (a *Adam) Step(params []*Param) {
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		w, g, m, v := p.W.Data, p.G.Data, p.M.Data, p.V.Data
		for i := range w {
			grad := float64(g[i])
			if a.WeightDecay != 0 {
				grad += a.WeightDecay * float64(w[i])
			}
			mi := a.Beta1*float64(m[i]) + (1-a.Beta1)*grad
			vi := a.Beta2*float64(v[i]) + (1-a.Beta2)*grad*grad
			m[i] = float32(mi)
			v[i] = float32(vi)
			mhat := mi / c1
			vhat := vi / c2
			w[i] -= float32(a.LR * mhat / (math.Sqrt(vhat) + a.Eps))
		}
	}
}

// StepCount returns the number of updates applied so far.
func (a *Adam) StepCount() int { return a.step }

// SetStepCount overwrites the update counter. Checkpoint restore uses this
// so the bias-correction terms of resumed steps match the uninterrupted
// run exactly (the moment estimates themselves live in each Param).
func (a *Adam) SetStepCount(n int) { a.step = n }
