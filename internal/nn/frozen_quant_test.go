package nn

import (
	"math"
	"testing"

	"salientpp/internal/tensor"
)

// TestForwardQuantCloseToFP32 runs the reduced-precision frozen forward
// next to the fp32 one on the same MFG and bounds the logit error. The
// int8 bound is loose (three quantized operands per layer — features,
// aggregation, weights — each contributing ~1/254 relative error); fp16
// is much tighter. What matters for serving is argmax stability, checked
// by TestInt8ForwardAccuracyDelta in the serve package at scale.
func TestForwardQuantCloseToFP32(t *testing.T) {
	mfg, x, _ := buildTinyMFG(t)
	m, err := NewModel(5, 4, 3, 2, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.Freeze().Forward(mfg, x)
	if err != nil {
		t.Fatal(err)
	}
	refClone := ref.Clone()

	for _, tc := range []struct {
		prec tensor.Precision
		tol  float64
	}{{tensor.PrecisionInt8, 0.08}, {tensor.PrecisionFP16, 0.005}} {
		fq := m.FreezePrecision(tc.prec)
		var xq tensor.QuantMatrix
		xq.Quantize(tc.prec, x)
		got, err := fq.ForwardQuant(mfg, &xq)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rows != refClone.Rows || got.Cols != refClone.Cols {
			t.Fatalf("%v: logits %dx%d, want %dx%d", tc.prec, got.Rows, got.Cols, refClone.Rows, refClone.Cols)
		}
		for i := range got.Data {
			if d := math.Abs(float64(got.Data[i] - refClone.Data[i])); d > tc.tol {
				t.Fatalf("%v: logit %d differs from fp32 by %g (%g vs %g, tol %g)",
					tc.prec, i, d, got.Data[i], refClone.Data[i], tc.tol)
			}
		}
		// Stage timers must attribute the quantized pass, not leak it.
		st := fq.TakeStageTimers()
		if st.AggregateNS <= 0 || st.TransformNS <= 0 || st.BackwardNS != 0 {
			t.Fatalf("%v: stage timers %+v, want positive aggregate/transform and zero backward", tc.prec, st)
		}
	}
}

// TestForwardQuantValidation covers the error surface: fp32 snapshots,
// mismatched precisions, and wrong shapes are all refused.
func TestForwardQuantValidation(t *testing.T) {
	mfg, x, _ := buildTinyMFG(t)
	m, err := NewModel(5, 4, 3, 2, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	var xq tensor.QuantMatrix
	xq.Quantize(tensor.PrecisionInt8, x)

	if _, err := m.Freeze().ForwardQuant(mfg, &xq); err == nil {
		t.Fatal("fp32 snapshot accepted ForwardQuant")
	}
	fq := m.FreezePrecision(tensor.PrecisionFP16)
	if _, err := fq.ForwardQuant(mfg, &xq); err == nil {
		t.Fatal("fp16 snapshot accepted int8 features")
	}
	if got := fq.Precision(); got != tensor.PrecisionFP16 {
		t.Fatalf("Precision() = %v", got)
	}
	short := xq.RowSlice(xq.Rows - 1)
	fq8 := m.FreezePrecision(tensor.PrecisionInt8)
	if _, err := fq8.ForwardQuant(mfg, &short); err == nil {
		t.Fatal("short feature matrix accepted")
	}
}

// TestForwardQuantAllocationFree pins the steady-state claim: after the
// first batch grows the scratch high-water marks, repeat quantized
// forwards on same-shaped batches allocate nothing.
func TestForwardQuantAllocationFree(t *testing.T) {
	mfg, x, _ := buildTinyMFG(t)
	m, err := NewModel(5, 4, 3, 2, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	fq := m.FreezePrecision(tensor.PrecisionInt8)
	var xq tensor.QuantMatrix
	xq.Quantize(tensor.PrecisionInt8, x)
	if _, err := fq.ForwardQuant(mfg, &xq); err != nil { // warm the arena and scratch
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := fq.ForwardQuant(mfg, &xq); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("warm ForwardQuant allocates %.1f objects per call, want 0", allocs)
	}
}
