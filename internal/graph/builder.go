package graph

import (
	"fmt"
	"sort"
)

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src, Dst int32
}

// BuildOptions control edge-list to CSR conversion.
type BuildOptions struct {
	// Undirected symmetrizes the input: every edge is stored in both
	// directions. Duplicate edges are always removed when Dedup is set.
	Undirected bool
	// Dedup removes parallel edges (and, combined with DropSelfLoops,
	// self loops). The resulting adjacency lists are sorted.
	Dedup bool
	// DropSelfLoops removes edges with Src == Dst.
	DropSelfLoops bool
}

// FromEdges builds a CSR graph with n vertices from an edge list.
// It returns an error if any endpoint is out of [0, n).
//
// The standard preprocessing used throughout this repository (matching the
// paper's "make the graph undirected" step) is
// FromEdges(n, edges, BuildOptions{Undirected: true, Dedup: true, DropSelfLoops: true}).
func FromEdges(n int, edges []Edge, opts BuildOptions) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for _, e := range edges {
		if e.Src < 0 || int(e.Src) >= n || e.Dst < 0 || int(e.Dst) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.Src, e.Dst, n)
		}
	}

	// Working copy including reversed edges when symmetrizing.
	work := make([]Edge, 0, len(edges)*2)
	for _, e := range edges {
		if opts.DropSelfLoops && e.Src == e.Dst {
			continue
		}
		work = append(work, e)
		if opts.Undirected && e.Src != e.Dst {
			work = append(work, Edge{e.Dst, e.Src})
		}
	}

	// Counting sort by source into CSR, then sort/dedup each list.
	offsets := make([]int64, n+1)
	for _, e := range work {
		offsets[e.Src+1]++
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	adj := make([]int32, len(work))
	cursor := make([]int64, n)
	for _, e := range work {
		p := offsets[e.Src] + cursor[e.Src]
		adj[p] = e.Dst
		cursor[e.Src]++
	}

	g := &CSR{Offsets: offsets, Adj: adj}
	if opts.Dedup {
		g = dedupSorted(g)
	}
	return g, nil
}

// dedupSorted sorts every adjacency list and removes duplicates, rebuilding
// offsets to stay dense.
func dedupSorted(g *CSR) *CSR {
	n := g.NumVertices()
	newOffsets := make([]int64, n+1)
	// Compact in place: the write position never overtakes the read
	// position because lists only shrink, so reusing g.Adj is safe.
	adj := g.Adj
	var write int64
	for v := 0; v < n; v++ {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		nbrs := adj[lo:hi]
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		newOffsets[v] = write
		for i, w := range nbrs {
			if i > 0 && nbrs[i-1] == w {
				continue
			}
			adj[write] = w
			write++
		}
	}
	newOffsets[n] = write
	return &CSR{Offsets: newOffsets, Adj: adj[:write], sorted: true}
}

// FromAdjacency builds a CSR directly from an adjacency-list representation.
// Useful in tests for hand-written graphs. Lists are copied.
func FromAdjacency(lists [][]int32) (*CSR, error) {
	n := len(lists)
	offsets := make([]int64, n+1)
	var m int64
	for v, l := range lists {
		for _, w := range l {
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
		}
		m += int64(len(l))
		offsets[v+1] = m
	}
	adj := make([]int32, 0, m)
	sorted := true
	for v, l := range lists {
		for i, w := range l {
			if i > 0 && l[i-1] > w {
				sorted = false
			}
			adj = append(adj, w)
		}
		_ = v
	}
	return &CSR{Offsets: offsets, Adj: adj, sorted: sorted}, nil
}

// EdgeList returns the stored directed edges. Intended for tests and tools.
func (g *CSR) EdgeList() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(int32(v)) {
			out = append(out, Edge{int32(v), w})
		}
	}
	return out
}
