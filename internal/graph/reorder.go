package graph

import (
	"fmt"
	"sort"
)

// Permutation maps old vertex ids to new vertex ids: newID = perm[oldID].
// A valid permutation is a bijection on [0, N).
type Permutation []int32

// Inverse returns the inverse permutation: old = inv[new].
func (p Permutation) Inverse() Permutation {
	inv := make(Permutation, len(p))
	for old, nw := range p {
		inv[nw] = int32(old)
	}
	return inv
}

// Validate reports whether p is a bijection on [0, len(p)).
func (p Permutation) Validate() error {
	seen := make([]bool, len(p))
	for old, nw := range p {
		if nw < 0 || int(nw) >= len(p) {
			return fmt.Errorf("graph: permutation maps %d out of range to %d", old, nw)
		}
		if seen[nw] {
			return fmt.Errorf("graph: permutation target %d duplicated", nw)
		}
		seen[nw] = true
	}
	return nil
}

// Relabel returns a new graph with vertices renamed through perm. The
// adjacency structure is preserved: (u,v) is an edge iff
// (perm[u], perm[v]) is an edge in the result. Adjacency lists in the
// result are sorted.
func Relabel(g *CSR, perm Permutation) (*CSR, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d != N %d", len(perm), n)
	}
	if err := perm.Validate(); err != nil {
		return nil, err
	}
	inv := perm.Inverse()
	offsets := make([]int64, n+1)
	for nw := 0; nw < n; nw++ {
		old := inv[nw]
		offsets[nw+1] = offsets[nw] + int64(g.Degree(old))
	}
	adj := make([]int32, g.NumEdges())
	for nw := 0; nw < n; nw++ {
		old := inv[nw]
		out := adj[offsets[nw]:offsets[nw+1]]
		for i, w := range g.Neighbors(old) {
			out[i] = perm[w]
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return &CSR{Offsets: offsets, Adj: adj, sorted: true}, nil
}

// PartitionOrder computes the SALIENT++ vertex ordering (§4.1): vertices of
// the same partition become contiguous, and within each partition vertices
// are sorted by descending score (ties broken by old id for determinism).
// With VIP values as scores, each machine's GPU-resident prefix holds its
// most frequently accessed local features.
//
// parts[v] is the partition of vertex v in [0, k); score[v] is its ranking
// key. It returns the permutation (old → new) and the first new id of each
// partition (length k+1 prefix table: partition p occupies
// [starts[p], starts[p+1])).
func PartitionOrder(parts []int32, k int, score []float64) (Permutation, []int64, error) {
	n := len(parts)
	if score != nil && len(score) != n {
		return nil, nil, fmt.Errorf("graph: score length %d != N %d", len(score), n)
	}
	counts := make([]int64, k+1)
	for v, p := range parts {
		if p < 0 || int(p) >= k {
			return nil, nil, fmt.Errorf("graph: vertex %d has partition %d out of [0,%d)", v, p, k)
		}
		counts[p+1]++
	}
	starts := make([]int64, k+1)
	for p := 0; p < k; p++ {
		starts[p+1] = starts[p] + counts[p+1]
	}

	// Order old ids per partition by descending score.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if parts[a] != parts[b] {
			return parts[a] < parts[b]
		}
		if score != nil && score[a] != score[b] {
			return score[a] > score[b]
		}
		return a < b
	})
	perm := make(Permutation, n)
	for nw, old := range order {
		perm[old] = int32(nw)
	}
	return perm, starts, nil
}

// IdentityPermutation returns the identity on [0, n).
func IdentityPermutation(n int) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = int32(i)
	}
	return p
}
