package graph

import (
	"sort"
	"testing"
)

func TestRMATBasicProperties(t *testing.T) {
	g, err := RMAT(DefaultRMAT(1000, 8000, 42))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 {
		t.Fatalf("N=%d", g.NumVertices())
	}
	if !g.IsUndirected() {
		t.Fatal("RMAT output must be undirected")
	}
	// Dedup may remove some insertions but the bulk should survive.
	if g.NumEdges() < 8000 { // 2*8000 directed minus dedup losses
		t.Fatalf("suspiciously few edges: %d", g.NumEdges())
	}
}

func TestRMATDeterminism(t *testing.T) {
	g1, _ := RMAT(DefaultRMAT(500, 3000, 7))
	g2, _ := RMAT(DefaultRMAT(500, 3000, 7))
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for i := range g1.Adj {
		if g1.Adj[i] != g2.Adj[i] {
			t.Fatal("same seed produced different adjacency")
		}
	}
	g3, _ := RMAT(DefaultRMAT(500, 3000, 8))
	if g3.NumEdges() == g1.NumEdges() {
		same := true
		for i := range g1.Adj {
			if i >= len(g3.Adj) || g1.Adj[i] != g3.Adj[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestRMATDegreeSkew(t *testing.T) {
	// The skewed quadrant probabilities must produce a heavy-tailed degree
	// distribution: max degree far above average.
	g, err := RMAT(DefaultRMAT(4096, 40000, 3))
	if err != nil {
		t.Fatal(err)
	}
	if float64(g.MaxDegree()) < 5*g.AvgDegree() {
		t.Fatalf("RMAT not skewed: max=%d avg=%.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestRMATRejectsBadConfig(t *testing.T) {
	bad := DefaultRMAT(100, 100, 1)
	bad.A = 0.9 // probabilities no longer sum to 1
	if _, err := RMAT(bad); err == nil {
		t.Fatal("expected config error")
	}
	if _, err := RMAT(DefaultRMAT(0, 10, 1)); err == nil {
		t.Fatal("expected size error")
	}
}

func TestUniformProperties(t *testing.T) {
	g, err := Uniform(200, 1000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsUndirected() {
		t.Fatal("Uniform output must be undirected")
	}
	// Degree distribution should be tight (Binomial), unlike RMAT.
	degs := g.Degrees()
	sort.Slice(degs, func(i, j int) bool { return degs[i] < degs[j] })
	median := float64(degs[len(degs)/2])
	if float64(g.MaxDegree()) > 6*median+10 {
		t.Fatalf("Uniform unexpectedly skewed: max=%d median=%.0f", g.MaxDegree(), median)
	}
}

func TestRing(t *testing.T) {
	g, err := Ring(10)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 10; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("ring degree %d at %d", g.Degree(v), v)
		}
	}
	if !g.HasEdge(9, 0) || !g.HasEdge(0, 9) {
		t.Fatal("ring must wrap around")
	}
	if _, err := Ring(2); err == nil {
		t.Fatal("Ring(2) should error")
	}
}

func TestStar(t *testing.T) {
	g, err := Star(8)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 7 {
		t.Fatalf("hub degree %d", g.Degree(0))
	}
	for v := int32(1); v < 8; v++ {
		if g.Degree(v) != 1 {
			t.Fatalf("leaf %d degree %d", v, g.Degree(v))
		}
	}
}

func TestGrid2D(t *testing.T) {
	g, err := Grid2D(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 12 {
		t.Fatalf("N=%d", g.NumVertices())
	}
	// Corner degrees 2, edge degrees 3, interior 4.
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree %d", g.Degree(0))
	}
	if g.Degree(5) != 4 { // row 1, col 1 is interior
		t.Fatalf("interior degree %d", g.Degree(5))
	}
	// Total edges: 3*3 horizontal + 2*4 vertical = 17 undirected = 34 directed.
	if g.NumEdges() != 34 {
		t.Fatalf("M=%d want 34", g.NumEdges())
	}
}

func TestComplete(t *testing.T) {
	g, err := Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 6; v++ {
		if g.Degree(v) != 5 {
			t.Fatalf("K6 degree %d at %d", g.Degree(v), v)
		}
	}
}
