package graph

import (
	"testing"
	"testing/quick"

	"salientpp/internal/rng"
)

func TestPermutationInverse(t *testing.T) {
	p := Permutation{2, 0, 1}
	inv := p.Inverse()
	want := Permutation{1, 2, 0}
	for i := range want {
		if inv[i] != want[i] {
			t.Fatalf("inverse = %v, want %v", inv, want)
		}
	}
}

func TestPermutationValidate(t *testing.T) {
	if err := (Permutation{0, 1, 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Permutation{0, 0, 2}).Validate(); err == nil {
		t.Fatal("expected duplicate error")
	}
	if err := (Permutation{0, 3, 1}).Validate(); err == nil {
		t.Fatal("expected range error")
	}
}

func TestRelabelPreservesAdjacency(t *testing.T) {
	g, err := Uniform(40, 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	perm := Permutation(rng.New(9).Perm(40))
	h, err := Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	for u := int32(0); int(u) < 40; u++ {
		for _, v := range g.Neighbors(u) {
			if !h.HasEdge(perm[u], perm[v]) {
				t.Fatalf("edge (%d,%d) lost under relabeling", u, v)
			}
		}
		if g.Degree(u) != h.Degree(perm[u]) {
			t.Fatalf("degree changed for %d", u)
		}
	}
}

func TestRelabelIdentity(t *testing.T) {
	g, err := Ring(12)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Relabel(g, IdentityPermutation(12))
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Adj {
		if g.Adj[i] != h.Adj[i] {
			t.Fatal("identity relabel changed adjacency")
		}
	}
}

func TestRelabelRejectsBadPerm(t *testing.T) {
	g, _ := Ring(5)
	if _, err := Relabel(g, Permutation{0, 1}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := Relabel(g, Permutation{0, 0, 1, 2, 3}); err == nil {
		t.Fatal("expected bijection error")
	}
}

func TestPartitionOrderContiguity(t *testing.T) {
	parts := []int32{1, 0, 1, 0, 2, 2, 0}
	score := []float64{0.1, 0.9, 0.8, 0.2, 0.5, 0.6, 0.7}
	perm, starts, err := PartitionOrder(parts, 3, score)
	if err != nil {
		t.Fatal(err)
	}
	if err := perm.Validate(); err != nil {
		t.Fatal(err)
	}
	// Partition sizes: p0 = {1,3,6}, p1 = {0,2}, p2 = {4,5}.
	wantStarts := []int64{0, 3, 5, 7}
	for i, w := range wantStarts {
		if starts[i] != w {
			t.Fatalf("starts = %v, want %v", starts, wantStarts)
		}
	}
	inv := perm.Inverse()
	// Within partition 0 (new ids 0..2) scores must be descending.
	for p := 0; p < 3; p++ {
		for nw := starts[p]; nw < starts[p+1]; nw++ {
			old := inv[nw]
			if parts[old] != int32(p) {
				t.Fatalf("new id %d holds vertex %d of partition %d, want %d", nw, old, parts[old], p)
			}
			if nw > starts[p] {
				prev := inv[nw-1]
				if score[prev] < score[old] {
					t.Fatalf("scores not descending within partition %d", p)
				}
			}
		}
	}
}

func TestPartitionOrderNilScore(t *testing.T) {
	parts := []int32{1, 0, 1, 0}
	perm, starts, err := PartitionOrder(parts, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if starts[1] != 2 {
		t.Fatalf("starts=%v", starts)
	}
	if err := perm.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionOrderRejectsBadPartition(t *testing.T) {
	if _, _, err := PartitionOrder([]int32{0, 5}, 2, nil); err == nil {
		t.Fatal("expected partition range error")
	}
}

// Property: relabeling twice with p then p.Inverse() restores the graph.
func TestRelabelRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(30)
		g, err := Uniform(n, int64(2*n), seed)
		if err != nil {
			return false
		}
		perm := Permutation(r.Perm(n))
		h, err := Relabel(g, perm)
		if err != nil {
			return false
		}
		back, err := Relabel(h, perm.Inverse())
		if err != nil {
			return false
		}
		if back.NumEdges() != g.NumEdges() {
			return false
		}
		for i := range g.Adj {
			if g.Adj[i] != back.Adj[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
