package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary format: magic, version, N, M, offsets, adjacency, sorted flag.
// Little-endian throughout. The format is versioned so the partitioner CLI
// can persist preprocessed graphs between runs.
const (
	ioMagic   uint32 = 0x53505047 // "SPPG"
	ioVersion uint32 = 1
)

// Write serializes the graph to w in the versioned binary format above.
func (g *CSR) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	le := binary.LittleEndian
	var hdr [24]byte
	le.PutUint32(hdr[0:], ioMagic)
	le.PutUint32(hdr[4:], ioVersion)
	le.PutUint64(hdr[8:], uint64(g.NumVertices()))
	le.PutUint64(hdr[16:], uint64(g.NumEdges()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, o := range g.Offsets {
		le.PutUint64(buf[:], uint64(o))
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
	}
	for _, a := range g.Adj {
		le.PutUint32(buf[:4], uint32(a))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	flag := byte(0)
	if g.sorted {
		flag = 1
	}
	if err := bw.WriteByte(flag); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadFrom deserializes a graph written by Write.
func ReadFrom(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	le := binary.LittleEndian
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if m := le.Uint32(hdr[0:]); m != ioMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", m)
	}
	if v := le.Uint32(hdr[4:]); v != ioVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", v)
	}
	n := int64(le.Uint64(hdr[8:]))
	m := int64(le.Uint64(hdr[16:]))
	// Size sanity: the counts are attacker-controlled on corrupt input, so
	// reject anything that could not be a real graph before touching them
	// (n+1 must not overflow, ids must fit int32) …
	if n < 0 || m < 0 || n > (1<<31)-2 || m > (1<<40) {
		return nil, fmt.Errorf("graph: corrupt sizes n=%d m=%d", n, m)
	}
	// … and allocate incrementally while reading, so a huge claimed size on
	// a short stream fails with a truncation error instead of attempting a
	// multi-gigabyte allocation. Growth is bounded by the bytes actually
	// present in the input.
	g := &CSR{}
	var buf [8]byte
	const chunk = 64 << 10
	g.Offsets = make([]int64, 0, min(n+1, chunk))
	for i := int64(0); i <= n; i++ {
		if _, err := io.ReadFull(br, buf[:8]); err != nil {
			return nil, fmt.Errorf("graph: reading offsets: %w", err)
		}
		g.Offsets = append(g.Offsets, int64(le.Uint64(buf[:])))
	}
	g.Adj = make([]int32, 0, min(m, chunk))
	for i := int64(0); i < m; i++ {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("graph: reading adjacency: %w", err)
		}
		g.Adj = append(g.Adj, int32(le.Uint32(buf[:4])))
	}
	flag, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("graph: reading sorted flag: %w", err)
	}
	g.sorted = flag == 1
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: deserialized graph invalid: %w", err)
	}
	return g, nil
}
