package graph

import (
	"fmt"

	"salientpp/internal/rng"
)

// RMATConfig parametrizes the recursive-matrix (Kronecker-style) generator
// of Chakrabarti, Zhan, and Faloutsos. RMAT graphs have the heavy-tailed
// degree distributions and community structure characteristic of the OGB
// citation and co-purchase graphs used in the paper, which is what the
// VIP/caching behaviour depends on.
type RMATConfig struct {
	// NumVertices is rounded up to the next power of two internally; the
	// generated edges are mapped back into [0, NumVertices).
	NumVertices int
	// NumEdges is the number of edge insertions before preprocessing
	// (symmetrization and dedup reduce the final count slightly).
	NumEdges int64
	// A, B, C, D are the quadrant probabilities; they must be positive and
	// sum to 1. The classic skewed setting is A=0.57 B=0.19 C=0.19 D=0.05.
	A, B, C, D float64
	// Noise perturbs the quadrant probabilities per recursion level to
	// smooth the degree distribution (standard "smoothed RMAT"). 0 disables.
	Noise float64
	// Seed makes generation deterministic.
	Seed uint64
}

// DefaultRMAT returns the classic skewed configuration at the given size.
func DefaultRMAT(n int, m int64, seed uint64) RMATConfig {
	return RMATConfig{NumVertices: n, NumEdges: m, A: 0.57, B: 0.19, C: 0.19, D: 0.05, Noise: 0.1, Seed: seed}
}

// RMAT generates an undirected, deduplicated, self-loop-free graph.
func RMAT(cfg RMATConfig) (*CSR, error) {
	if cfg.NumVertices <= 0 {
		return nil, fmt.Errorf("graph: RMAT needs positive NumVertices, got %d", cfg.NumVertices)
	}
	sum := cfg.A + cfg.B + cfg.C + cfg.D
	if sum < 0.999 || sum > 1.001 || cfg.A <= 0 || cfg.B <= 0 || cfg.C <= 0 || cfg.D <= 0 {
		return nil, fmt.Errorf("graph: RMAT quadrant probabilities must be positive and sum to 1 (got %v)", sum)
	}
	levels := 0
	for (1 << levels) < cfg.NumVertices {
		levels++
	}
	r := rng.New(cfg.Seed)
	edges := make([]Edge, 0, cfg.NumEdges)
	for i := int64(0); i < cfg.NumEdges; i++ {
		src, dst := rmatEdge(r, levels, cfg)
		// Map the power-of-two domain back into [0, N): rejection keeps the
		// distribution unbiased for the kept region.
		if src >= int64(cfg.NumVertices) || dst >= int64(cfg.NumVertices) {
			i--
			continue
		}
		edges = append(edges, Edge{int32(src), int32(dst)})
	}
	return FromEdges(cfg.NumVertices, edges, BuildOptions{Undirected: true, Dedup: true, DropSelfLoops: true})
}

func rmatEdge(r *rng.RNG, levels int, cfg RMATConfig) (int64, int64) {
	var src, dst int64
	a, b, c := cfg.A, cfg.B, cfg.C
	for l := 0; l < levels; l++ {
		aa, bb, cc := a, b, c
		if cfg.Noise > 0 {
			// Multiplicative noise per level, renormalized.
			na := aa * (1 - cfg.Noise + 2*cfg.Noise*r.Float64())
			nb := bb * (1 - cfg.Noise + 2*cfg.Noise*r.Float64())
			nc := cc * (1 - cfg.Noise + 2*cfg.Noise*r.Float64())
			nd := (1 - aa - bb - cc) * (1 - cfg.Noise + 2*cfg.Noise*r.Float64())
			tot := na + nb + nc + nd
			aa, bb, cc = na/tot, nb/tot, nc/tot
		}
		u := r.Float64()
		src <<= 1
		dst <<= 1
		switch {
		case u < aa:
			// top-left: no bits set
		case u < aa+bb:
			dst |= 1
		case u < aa+bb+cc:
			src |= 1
		default:
			src |= 1
			dst |= 1
		}
	}
	return src, dst
}

// Uniform generates an Erdős–Rényi-style G(n, m) graph: m edge insertions
// chosen uniformly at random, then symmetrized and deduplicated.
func Uniform(n int, m int64, seed uint64) (*CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: Uniform needs positive n, got %d", n)
	}
	r := rng.New(seed)
	edges := make([]Edge, 0, m)
	for i := int64(0); i < m; i++ {
		edges = append(edges, Edge{int32(r.Intn(n)), int32(r.Intn(n))})
	}
	return FromEdges(n, edges, BuildOptions{Undirected: true, Dedup: true, DropSelfLoops: true})
}

// Ring generates an undirected cycle on n vertices.
func Ring(n int) (*CSR, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: Ring needs n >= 3, got %d", n)
	}
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{int32(i), int32((i + 1) % n)})
	}
	return FromEdges(n, edges, BuildOptions{Undirected: true, Dedup: true, DropSelfLoops: true})
}

// Star generates an undirected star: vertex 0 is the hub joined to all
// other vertices. The hub's degree is n-1, a stress test for samplers and
// for the VIP model's min(1, f/d) transition probabilities.
func Star(n int) (*CSR, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: Star needs n >= 2, got %d", n)
	}
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{0, int32(i)})
	}
	return FromEdges(n, edges, BuildOptions{Undirected: true, Dedup: true, DropSelfLoops: true})
}

// Grid2D generates an undirected rows×cols grid graph, a convenient
// low-degree planar workload with perfectly predictable partitions.
func Grid2D(rows, cols int) (*CSR, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("graph: Grid2D needs positive dimensions, got %dx%d", rows, cols)
	}
	id := func(r, c int) int32 { return int32(r*cols + c) }
	edges := make([]Edge, 0, 2*rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{id(r, c), id(r+1, c)})
			}
		}
	}
	return FromEdges(rows*cols, edges, BuildOptions{Undirected: true, Dedup: true, DropSelfLoops: true})
}

// Complete generates the complete graph K_n. Quadratic size; tests only.
func Complete(n int) (*CSR, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: Complete needs n >= 1, got %d", n)
	}
	edges := make([]Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{int32(i), int32(j)})
		}
	}
	return FromEdges(n, edges, BuildOptions{Undirected: true, Dedup: true, DropSelfLoops: true})
}
