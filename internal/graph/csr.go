// Package graph provides the compressed-sparse-row (CSR) graph substrate
// used by the SALIENT++ reproduction: construction from edge lists,
// synthetic generators with realistic degree skew, vertex reordering, and
// binary (de)serialization.
//
// Vertices are identified by int32 indices in [0, N). Directed adjacency is
// stored in CSR form; undirected graphs store each edge in both directions
// (as the paper does after symmetrizing the OGB graphs).
package graph

import (
	"fmt"
	"sort"
)

// CSR is a graph in compressed-sparse-row format.
//
// The neighbors of vertex v are Adj[Offsets[v]:Offsets[v+1]]. Within a
// vertex's neighbor list the order is unspecified unless the graph was
// built with sorted adjacency (see Builder), in which case it is ascending
// and HasEdge runs in O(log d).
type CSR struct {
	// Offsets has length NumVertices()+1; Offsets[0] == 0.
	Offsets []int64
	// Adj holds concatenated neighbor lists; length is NumEdges().
	Adj []int32
	// sorted records whether every adjacency list is ascending.
	sorted bool
}

// NumVertices returns the number of vertices N.
func (g *CSR) NumVertices() int { return len(g.Offsets) - 1 }

// NumEdges returns the number of stored directed edges M. For undirected
// graphs this counts each edge twice (once per direction).
func (g *CSR) NumEdges() int64 { return g.Offsets[len(g.Offsets)-1] }

// Degree returns the out-degree of v.
func (g *CSR) Degree(v int32) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the neighbor slice of v. The returned slice aliases the
// graph's storage and must not be modified.
func (g *CSR) Neighbors(v int32) []int32 {
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// Sorted reports whether adjacency lists are in ascending order.
func (g *CSR) Sorted() bool { return g.sorted }

// HasEdge reports whether the directed edge (u, v) exists. It uses binary
// search when the graph was built sorted and a linear scan otherwise.
func (g *CSR) HasEdge(u, v int32) bool {
	nbrs := g.Neighbors(u)
	if g.sorted {
		i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
		return i < len(nbrs) && nbrs[i] == v
	}
	for _, w := range nbrs {
		if w == v {
			return true
		}
	}
	return false
}

// MaxDegree returns the maximum out-degree over all vertices (0 for an
// empty graph).
func (g *CSR) MaxDegree() int {
	best := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(int32(v)); d > best {
			best = d
		}
	}
	return best
}

// AvgDegree returns the average out-degree.
func (g *CSR) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(n)
}

// Degrees returns a fresh slice of all out-degrees.
func (g *CSR) Degrees() []int32 {
	n := g.NumVertices()
	d := make([]int32, n)
	for v := 0; v < n; v++ {
		d[v] = int32(g.Offsets[v+1] - g.Offsets[v])
	}
	return d
}

// IsUndirected reports whether for every stored edge (u,v) the reverse edge
// (v,u) is also stored. It is O(M log d) on sorted graphs and O(M·d)
// otherwise; intended for tests and validation, not hot paths.
func (g *CSR) IsUndirected() bool {
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if !g.HasEdge(v, int32(u)) {
				return false
			}
		}
	}
	return true
}

// Validate checks structural invariants and returns a descriptive error on
// the first violation: monotone offsets, in-range neighbor ids, and sorted
// adjacency if the graph claims it.
func (g *CSR) Validate() error {
	if len(g.Offsets) == 0 {
		return fmt.Errorf("graph: missing offsets")
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("graph: Offsets[0] = %d, want 0", g.Offsets[0])
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			return fmt.Errorf("graph: offsets decrease at vertex %d", v)
		}
	}
	if g.Offsets[n] != int64(len(g.Adj)) {
		return fmt.Errorf("graph: Offsets[N] = %d, want len(Adj) = %d", g.Offsets[n], len(g.Adj))
	}
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(int32(v))
		for i, w := range nbrs {
			if w < 0 || int(w) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
			if g.sorted && i > 0 && nbrs[i-1] > w {
				return fmt.Errorf("graph: vertex %d adjacency not sorted", v)
			}
		}
	}
	return nil
}

// String returns a short human-readable summary.
func (g *CSR) String() string {
	return fmt.Sprintf("CSR{N=%d, M=%d, maxdeg=%d}", g.NumVertices(), g.NumEdges(), g.MaxDegree())
}
