package graph

import (
	"testing"
	"testing/quick"

	"salientpp/internal/rng"
)

func mustFromEdges(t *testing.T, n int, edges []Edge, opts BuildOptions) *CSR {
	t.Helper()
	g, err := FromEdges(n, edges, opts)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func TestFromEdgesBasic(t *testing.T) {
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, BuildOptions{})
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got N=%d M=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("missing edge (0,1)")
	}
	if g.HasEdge(1, 0) {
		t.Fatal("directed build should not add reverse edge")
	}
}

func TestFromEdgesUndirected(t *testing.T) {
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {1, 2}, {0, 1}}, BuildOptions{Undirected: true, Dedup: true})
	if g.NumEdges() != 4 { // (0,1),(1,0),(1,2),(2,1)
		t.Fatalf("got M=%d want 4", g.NumEdges())
	}
	if !g.IsUndirected() {
		t.Fatal("expected undirected graph")
	}
	if !g.Sorted() {
		t.Fatal("dedup build should produce sorted adjacency")
	}
}

func TestFromEdgesSelfLoops(t *testing.T) {
	g := mustFromEdges(t, 3, []Edge{{0, 0}, {0, 1}, {2, 2}}, BuildOptions{Undirected: true, Dedup: true, DropSelfLoops: true})
	if g.NumEdges() != 2 {
		t.Fatalf("got M=%d want 2", g.NumEdges())
	}
	if g.HasEdge(0, 0) || g.HasEdge(2, 2) {
		t.Fatal("self loop survived DropSelfLoops")
	}
}

func TestFromEdgesOutOfRange(t *testing.T) {
	if _, err := FromEdges(3, []Edge{{0, 3}}, BuildOptions{}); err == nil {
		t.Fatal("expected error for out-of-range endpoint")
	}
	if _, err := FromEdges(3, []Edge{{-1, 0}}, BuildOptions{}); err == nil {
		t.Fatal("expected error for negative endpoint")
	}
}

func TestFromEdgesEmpty(t *testing.T) {
	g := mustFromEdges(t, 5, nil, BuildOptions{Dedup: true})
	if g.NumVertices() != 5 || g.NumEdges() != 0 {
		t.Fatalf("got N=%d M=%d", g.NumVertices(), g.NumEdges())
	}
	if g.Degree(0) != 0 {
		t.Fatal("expected degree 0")
	}
}

func TestFromAdjacency(t *testing.T) {
	g, err := FromAdjacency([][]int32{{1, 2}, {0}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 2 || g.Degree(1) != 1 {
		t.Fatal("wrong degrees")
	}
	if _, err := FromAdjacency([][]int32{{5}}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := mustFromEdges(t, 5, []Edge{{0, 1}, {0, 2}, {0, 3}, {4, 0}}, BuildOptions{Undirected: true, Dedup: true})
	if g.Degree(0) != 4 {
		t.Fatalf("Degree(0)=%d want 4", g.Degree(0))
	}
	nbrs := g.Neighbors(0)
	want := []int32{1, 2, 3, 4}
	for i, w := range want {
		if nbrs[i] != w {
			t.Fatalf("Neighbors(0)=%v want %v", nbrs, want)
		}
	}
}

func TestDegreesSliceMatches(t *testing.T) {
	g, err := Uniform(50, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := g.Degrees()
	var total int64
	for v, dv := range d {
		if int(dv) != g.Degree(int32(v)) {
			t.Fatalf("degree mismatch at %d", v)
		}
		total += int64(dv)
	}
	if total != g.NumEdges() {
		t.Fatalf("degree sum %d != M %d", total, g.NumEdges())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := mustFromEdges(t, 3, []Edge{{0, 1}, {1, 2}}, BuildOptions{Dedup: true})
	g.Adj[0] = 99
	if err := g.Validate(); err == nil {
		t.Fatal("expected validation error for out-of-range neighbor")
	}
	g2 := mustFromEdges(t, 3, []Edge{{0, 1}, {1, 2}}, BuildOptions{Dedup: true})
	g2.Offsets[1] = 5
	if err := g2.Validate(); err == nil {
		t.Fatal("expected validation error for bad offsets")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, err := Uniform(30, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	edges := g.EdgeList()
	g2 := mustFromEdges(t, 30, edges, BuildOptions{Dedup: true})
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edge list round trip changed M: %d != %d", g2.NumEdges(), g.NumEdges())
	}
	for v := int32(0); int(v) < 30; v++ {
		if g2.Degree(v) != g.Degree(v) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
}

// Property: building with Undirected+Dedup always yields a symmetric,
// loop-free, sorted graph regardless of input.
func TestBuildInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(40)
		m := r.Intn(200)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{int32(r.Intn(n)), int32(r.Intn(n))}
		}
		g, err := FromEdges(n, edges, BuildOptions{Undirected: true, Dedup: true, DropSelfLoops: true})
		if err != nil {
			return false
		}
		if g.Validate() != nil || !g.IsUndirected() {
			return false
		}
		for v := int32(0); int(v) < n; v++ {
			if g.HasEdge(v, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
