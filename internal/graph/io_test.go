package graph

import (
	"bytes"
	"testing"
)

func TestSerializationRoundTrip(t *testing.T) {
	g, err := RMAT(DefaultRMAT(300, 2000, 21))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch after round trip")
	}
	for i := range g.Offsets {
		if g.Offsets[i] != h.Offsets[i] {
			t.Fatal("offsets changed")
		}
	}
	for i := range g.Adj {
		if g.Adj[i] != h.Adj[i] {
			t.Fatal("adjacency changed")
		}
	}
	if h.Sorted() != g.Sorted() {
		t.Fatal("sorted flag changed")
	}
}

func TestSerializationEmptyGraph(t *testing.T) {
	g, err := FromEdges(4, nil, BuildOptions{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 4 || h.NumEdges() != 0 {
		t.Fatal("empty graph round trip failed")
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("not a graph at all........"))); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected EOF error")
	}
}

func TestReadFromRejectsTruncated(t *testing.T) {
	g, _ := Ring(20)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadFrom(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("expected truncation error")
	}
}
