package graph

import (
	"bytes"
	"testing"
)

// FuzzReadFrom drives the binary graph loader with arbitrary bytes: it
// must error — never panic, never allocate beyond what the input justifies
// — on corrupt input, and any graph it does accept must pass Validate
// (ReadFrom runs it) and round-trip through Write.
func FuzzReadFrom(f *testing.F) {
	// Seed corpus: a valid small graph, a truncation of it, a corrupt
	// header, and an empty input.
	g, err := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, BuildOptions{Undirected: true, Dedup: true})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	huge := append([]byte(nil), valid...)
	huge[8] = 0xff // claim a large vertex count
	huge[15] = 0x7f
	f.Add(huge)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.Write(&out); err != nil {
			t.Fatalf("accepted graph does not re-encode: %v", err)
		}
		back, err := ReadFrom(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded graph does not re-decode: %v", err)
		}
		if back.NumVertices() != got.NumVertices() || back.NumEdges() != got.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				got.NumVertices(), got.NumEdges(), back.NumVertices(), back.NumEdges())
		}
	})
}
